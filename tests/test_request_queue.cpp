// RequestQueue edge cases: typed rejection carrying the observed depth,
// close() waking a consumer parked against a full-but-small batch deadline,
// post-close admission, and FIFO ordering under concurrent producers.
#include "runtime/request_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace scbnn::runtime {
namespace {

Request make_request(float tag0, float tag1) {
  Request request;
  request.image.assign(2, 0.0f);
  request.image[0] = tag0;
  request.image[1] = tag1;
  request.enqueued_at = ServeClock::now();
  return request;
}

TEST(RequestQueue, QueueFullErrorCarriesCapacityAndDepth) {
  RequestQueue queue(3);
  for (int i = 0; i < 3; ++i) queue.push(make_request(0, i));
  try {
    queue.push(make_request(0, 3));
    FAIL() << "push into a full queue must throw QueueFullError";
  } catch (const QueueFullError& e) {
    EXPECT_EQ(e.capacity(), 3u);
    EXPECT_EQ(e.depth(), 3u);
    EXPECT_NE(std::string(e.what()).find("capacity 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("depth 3"), std::string::npos);
  }
}

TEST(RequestQueue, BurstRejectionReportsCurrentDepth) {
  RequestQueue queue(4);
  queue.push(make_request(0, 0));
  queue.push(make_request(0, 1));
  std::vector<Request> burst;
  for (int i = 0; i < 3; ++i) burst.push_back(make_request(1, i));
  try {
    queue.push_burst(std::move(burst));
    FAIL() << "burst past capacity must throw QueueFullError";
  } catch (const QueueFullError& e) {
    EXPECT_EQ(e.capacity(), 4u);
    EXPECT_EQ(e.depth(), 2u);  // what was queued when the burst bounced
  }
  EXPECT_EQ(queue.size(), 2u);  // all-or-nothing: nothing was admitted
}

TEST(RequestQueue, CloseWakesAConsumerWaitingOnAFullQueue) {
  // The queue is full but below max_batch, so the consumer sits in the
  // deadline wait hoping for companions that can never be admitted.
  // close() must wake it immediately — not after the 10s delay expires.
  RequestQueue queue(2);
  queue.push(make_request(0, 0));
  queue.push(make_request(0, 1));

  std::atomic<bool> popped{false};
  std::vector<Request> batch;
  std::thread consumer([&] {
    batch = queue.pop_batch(/*max_batch=*/8,
                            std::chrono::microseconds(10'000'000));
    popped.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(popped.load());  // parked on the deadline wait

  const auto t0 = ServeClock::now();
  queue.close();
  consumer.join();
  const double woke_ms = ms_between(t0, ServeClock::now());

  EXPECT_TRUE(popped.load());
  EXPECT_EQ(batch.size(), 2u);  // the backlog is drained, not lost
  EXPECT_LT(woke_ms, 5000.0);   // woken by close(), not the 10s deadline
}

TEST(RequestQueue, CloseWhileFullRejectsProducersAndDrains) {
  RequestQueue queue(2);
  queue.push(make_request(0, 0));
  queue.push(make_request(0, 1));
  queue.close();

  // After close a producer gets the closed error even though the queue is
  // also full — closed wins, the request can never be served.
  EXPECT_THROW(queue.push(make_request(0, 2)), std::runtime_error);

  // The consumer still drains the backlog, then sees closed-and-drained.
  const std::vector<Request> batch =
      queue.pop_batch(8, std::chrono::microseconds(0));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_TRUE(queue.pop_batch(8, std::chrono::microseconds(0)).empty());
}

TEST(RequestQueue, ConcurrentProducersKeepPerProducerFifoOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 64;
  RequestQueue queue(kProducers * kPerProducer);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.push(make_request(static_cast<float>(p),
                                static_cast<float>(i)));
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // Drain in batches; arrival order within each producer must be intact
  // (the queue is MPSC FIFO: interleaving across producers is free, but a
  // producer's own requests never reorder).
  std::vector<int> next_seq(kProducers, 0);
  int drained = 0;
  while (drained < kProducers * kPerProducer) {
    // Everything is already queued, so each pop returns immediately.
    const std::vector<Request> batch =
        queue.pop_batch(7, std::chrono::microseconds(0));
    ASSERT_FALSE(batch.empty());
    for (const Request& r : batch) {
      const int p = static_cast<int>(r.image[0]);
      const int seq = static_cast<int>(r.image[1]);
      EXPECT_EQ(seq, next_seq[static_cast<std::size_t>(p)]++)
          << "producer " << p << " reordered";
      ++drained;
    }
  }
  EXPECT_EQ(drained, kProducers * kPerProducer);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueue, ProducersBlockedOnlyByDesignNeverByPush) {
  // push() is reject-not-block: a full queue answers in bounded time even
  // with no consumer at all.
  RequestQueue queue(1);
  queue.push(make_request(0, 0));
  const auto t0 = ServeClock::now();
  EXPECT_THROW(queue.push(make_request(0, 1)), QueueFullError);
  EXPECT_LT(ms_between(t0, ServeClock::now()), 1000.0);
}

}  // namespace
}  // namespace scbnn::runtime
