#include "sc/gates.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sc/lowdisc.h"
#include "sc/rng_source.h"
#include "sc/sng.h"

namespace scbnn::sc {
namespace {

TEST(AndMultiply, ExactOnRampTimesLowDiscrepancy) {
  // Ramp (prefix-ones) x van der Corput: the paper's proposed multiplier
  // configuration. Error bounded by the sequence discrepancy.
  const unsigned bits = 8;
  const std::size_t n = 256;
  VanDerCorputSource vdc(bits);
  for (std::uint32_t bx : {0u, 51u, 128u, 200u, 256u}) {
    for (std::uint32_t by : {0u, 37u, 128u, 256u}) {
      vdc.reset();
      const Bitstream x = Bitstream::prefix_ones(n, bx);
      const Bitstream y = generate_stream(vdc, by, n);
      const Bitstream z = and_multiply(x, y);
      const double expected =
          (static_cast<double>(bx) / 256.0) * (static_cast<double>(by) / 256.0);
      EXPECT_NEAR(z.unipolar(), expected, 9.0 / 256.0)
          << "bx=" << bx << " by=" << by;
    }
  }
}

TEST(AndMultiply, IdentityAndAnnihilator) {
  const Bitstream x = Bitstream::from_string("0110 1001");
  EXPECT_EQ(and_multiply(x, Bitstream::constant(8, true)), x);
  EXPECT_EQ(and_multiply(x, Bitstream::constant(8, false)).count_ones(), 0u);
}

TEST(OrAdd, ComputesUnionProbability) {
  // pZ = pX + pY - pX*pY; accurate only near zero (Li et al. [21]).
  const Bitstream x = Bitstream::from_string("1000 0000");
  const Bitstream y = Bitstream::from_string("0100 0000");
  EXPECT_DOUBLE_EQ(or_add(x, y).unipolar(), 0.25);
}

TEST(MuxAdd, SelectSemantics) {
  const Bitstream x = Bitstream::from_string("1111");
  const Bitstream y = Bitstream::from_string("0000");
  // sel=0 passes x, sel=1 passes y.
  EXPECT_EQ(mux_add(x, y, Bitstream::from_string("0000")), x);
  EXPECT_EQ(mux_add(x, y, Bitstream::from_string("1111")), y);
  EXPECT_EQ(mux_add(x, y, Bitstream::from_string("0101")).to_string(), "1010");
}

TEST(MuxAdd, HalfSumInExpectation) {
  const std::size_t n = 4096;
  MersenneSource sx(8, 11), sy(8, 22), ssel(8, 33);
  const Bitstream x = generate_stream(sx, 192, n);   // 0.75
  const Bitstream y = generate_stream(sy, 64, n);    // 0.25
  const Bitstream sel = generate_stream(ssel, 128, n);
  const Bitstream z = mux_add(x, y, sel);
  EXPECT_NEAR(z.unipolar(), 0.5, 0.03);
}

TEST(MuxAdd, RejectsLengthMismatch) {
  EXPECT_THROW(
      (void)mux_add(Bitstream(8), Bitstream(8), Bitstream(9)),
      std::invalid_argument);
  EXPECT_THROW(
      (void)mux_add(Bitstream(8), Bitstream(9), Bitstream(8)),
      std::invalid_argument);
}

TEST(XnorMultiply, BipolarProductInExpectation) {
  // bipolar: z = x * y for uncorrelated streams.
  const std::size_t n = 8192;
  MersenneSource sx(8, 7), sy(8, 13);
  const Bitstream x = generate_stream(sx, 192, n);  // bipolar +0.5
  const Bitstream y = generate_stream(sy, 64, n);   // bipolar -0.5
  const Bitstream z = xnor_multiply_bipolar(x, y);
  EXPECT_NEAR(z.bipolar(), -0.25, 0.05);
}

TEST(XnorMultiply, ConstantCases) {
  const Bitstream x = Bitstream::from_string("0101 0011");
  // x * (+1) = x ; x * (-1) = -x.
  EXPECT_EQ(xnor_multiply_bipolar(x, Bitstream::constant(8, true)), x);
  const Bitstream negated =
      xnor_multiply_bipolar(x, Bitstream::constant(8, false));
  EXPECT_DOUBLE_EQ(negated.bipolar(), -x.bipolar());
}

}  // namespace
}  // namespace scbnn::sc
