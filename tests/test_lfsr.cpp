#include "sc/lfsr.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace scbnn::sc {
namespace {

class LfsrPeriodTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LfsrPeriodTest, PrimaryTapsGiveMaximalPeriod) {
  const unsigned bits = GetParam();
  Lfsr lfsr(bits, 1);
  const std::uint32_t period = (std::uint32_t{1} << bits) - 1;
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < period; ++i) {
    const std::uint32_t v = lfsr.next();
    EXPECT_NE(v, 0u);
    EXPECT_TRUE(seen.insert(v).second) << "repeated state " << v;
  }
  // After a full period the sequence must wrap to the seed.
  EXPECT_EQ(lfsr.next(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrPeriodTest,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u,
                                           11u, 12u, 13u, 14u, 15u, 16u));

class LfsrAltPeriodTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LfsrAltPeriodTest, AlternateTapsGiveMaximalPeriod) {
  const unsigned bits = GetParam();
  Lfsr lfsr(bits, 1, maximal_lfsr_taps_alt(bits));
  const std::uint32_t period = (std::uint32_t{1} << bits) - 1;
  std::set<std::uint32_t> seen;
  for (std::uint32_t i = 0; i < period; ++i) {
    EXPECT_TRUE(seen.insert(lfsr.next()).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrAltPeriodTest,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u,
                                           11u, 12u, 13u, 14u, 15u, 16u));

TEST(Lfsr, AlternateTapsDifferFromPrimary) {
  for (unsigned bits = 3; bits <= 16; ++bits) {
    EXPECT_NE(maximal_lfsr_taps(bits), maximal_lfsr_taps_alt(bits))
        << "width " << bits;
  }
}

TEST(Lfsr, AlternatePolynomialGivesDifferentSequence) {
  Lfsr a(8, 1);
  Lfsr b(8, 1, maximal_lfsr_taps_alt(8));
  bool differs = false;
  for (int i = 0; i < 32; ++i) {
    if (a.next() != b.next()) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Lfsr, ZeroSeedRejected) {
  EXPECT_THROW(Lfsr(8, 0), std::invalid_argument);
  // Seed that masks to zero in the register width is also rejected.
  EXPECT_THROW(Lfsr(4, 0x10), std::invalid_argument);
}

TEST(Lfsr, UnsupportedWidthRejected) {
  EXPECT_THROW((void)maximal_lfsr_taps(1), std::invalid_argument);
  EXPECT_THROW((void)maximal_lfsr_taps(25), std::invalid_argument);
  EXPECT_THROW((void)maximal_lfsr_taps_alt(1), std::invalid_argument);
  EXPECT_THROW((void)maximal_lfsr_taps_alt(17), std::invalid_argument);
  // Width 2 is the documented fallback to the unique primitive polynomial.
  EXPECT_EQ(maximal_lfsr_taps_alt(2), maximal_lfsr_taps(2));
}

TEST(Lfsr, ResetRestartsSequence) {
  Lfsr lfsr(8, 0x5A);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(lfsr.next());
  lfsr.reset();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(lfsr.next(), first[i]);
}

TEST(ShiftedLfsr, RotationIsExact) {
  Lfsr base(8, 0x5A);
  ShiftedLfsr shifted(8, 0x5A, 3);
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t v = base.next();
    const std::uint32_t expected = ((v >> 3) | (v << 5)) & 0xFFu;
    EXPECT_EQ(shifted.next(), expected);
  }
}

TEST(ShiftedLfsr, ZeroRotationIsIdentity) {
  Lfsr base(8, 7);
  ShiftedLfsr shifted(8, 7, 0);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(shifted.next(), base.next());
}

TEST(ShiftedLfsr, RotationWrapsModuloWidth) {
  Lfsr base(8, 7);
  ShiftedLfsr shifted(8, 7, 8);  // full rotation == identity
  for (int i = 0; i < 50; ++i) EXPECT_EQ(shifted.next(), base.next());
}

}  // namespace
}  // namespace scbnn::sc
