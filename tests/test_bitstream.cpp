#include "sc/bitstream.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace scbnn::sc {
namespace {

TEST(Bitstream, DefaultIsEmpty) {
  Bitstream s;
  EXPECT_EQ(s.length(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(Bitstream, ZeroInitialized) {
  Bitstream s(100);
  EXPECT_EQ(s.length(), 100u);
  EXPECT_EQ(s.count_ones(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(s.bit(i));
}

TEST(Bitstream, SetAndGetBits) {
  Bitstream s(130);  // spans three words
  s.set_bit(0, true);
  s.set_bit(63, true);
  s.set_bit(64, true);
  s.set_bit(129, true);
  EXPECT_TRUE(s.bit(0));
  EXPECT_TRUE(s.bit(63));
  EXPECT_TRUE(s.bit(64));
  EXPECT_TRUE(s.bit(129));
  EXPECT_FALSE(s.bit(1));
  EXPECT_EQ(s.count_ones(), 4u);
  s.set_bit(63, false);
  EXPECT_FALSE(s.bit(63));
  EXPECT_EQ(s.count_ones(), 3u);
}

TEST(Bitstream, FromStringParsesTimeOrder) {
  auto s = Bitstream::from_string("0110 0011");
  EXPECT_EQ(s.length(), 8u);
  EXPECT_FALSE(s.bit(0));
  EXPECT_TRUE(s.bit(1));
  EXPECT_TRUE(s.bit(2));
  EXPECT_FALSE(s.bit(3));
  EXPECT_EQ(s.to_string(), "01100011");
}

TEST(Bitstream, FromStringIgnoresSeparators) {
  EXPECT_EQ(Bitstream::from_string("10_10 10").length(), 6u);
}

TEST(Bitstream, FromStringRejectsBadChars) {
  EXPECT_THROW((void)Bitstream::from_string("01x0"), std::invalid_argument);
}

TEST(Bitstream, ConstantStreams) {
  auto ones = Bitstream::constant(70, true);
  EXPECT_EQ(ones.count_ones(), 70u);
  EXPECT_DOUBLE_EQ(ones.unipolar(), 1.0);
  auto zeros = Bitstream::constant(70, false);
  EXPECT_EQ(zeros.count_ones(), 0u);
  EXPECT_DOUBLE_EQ(zeros.bipolar(), -1.0);
}

TEST(Bitstream, UnipolarAndBipolarValues) {
  auto s = Bitstream::from_string("0101");
  EXPECT_DOUBLE_EQ(s.unipolar(), 0.5);
  EXPECT_DOUBLE_EQ(s.bipolar(), 0.0);
  auto t = Bitstream::from_string("1110");
  EXPECT_DOUBLE_EQ(t.unipolar(), 0.75);
  EXPECT_DOUBLE_EQ(t.bipolar(), 0.5);
}

TEST(Bitstream, UnipolarOnEmptyThrows) {
  Bitstream s;
  EXPECT_THROW((void)s.unipolar(), std::logic_error);
}

TEST(Bitstream, BitwiseOps) {
  auto a = Bitstream::from_string("1100");
  auto b = Bitstream::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((~a).to_string(), "0011");
}

TEST(Bitstream, OpsRejectLengthMismatch) {
  Bitstream a(4), b(5);
  EXPECT_THROW((void)(a & b), std::invalid_argument);
  EXPECT_THROW((void)(a | b), std::invalid_argument);
  EXPECT_THROW((void)(a ^ b), std::invalid_argument);
}

TEST(Bitstream, ComplementMasksTail) {
  // ~ of a 10-bit stream must not set bits beyond the length.
  Bitstream s(10);
  auto inv = ~s;
  EXPECT_EQ(inv.count_ones(), 10u);
  EXPECT_EQ(inv.words()[0], 0x3FFu);
}

TEST(Bitstream, OutOfRangeAccessesThrow) {
  Bitstream s(8);
  EXPECT_THROW((void)s.bit(8), std::out_of_range);
  EXPECT_THROW(s.set_bit(8, true), std::out_of_range);
}

class PrefixOnesTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefixOnesTest, ExactCountAndPlacement) {
  const std::size_t ones = GetParam();
  const std::size_t len = 200;
  auto s = Bitstream::prefix_ones(len, ones);
  EXPECT_EQ(s.count_ones(), ones);
  for (std::size_t i = 0; i < len; ++i) {
    EXPECT_EQ(s.bit(i), i < ones) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrefixOnesTest,
                         ::testing::Values(0u, 1u, 63u, 64u, 65u, 127u, 128u,
                                           199u, 200u));

TEST(Bitstream, PrefixOnesRejectsOverflow) {
  EXPECT_THROW((void)Bitstream::prefix_ones(8, 9), std::invalid_argument);
}

TEST(Bitstream, EqualityComparison) {
  EXPECT_EQ(Bitstream::from_string("0101"), Bitstream::from_string("0101"));
  EXPECT_NE(Bitstream::from_string("0101"), Bitstream::from_string("0100"));
  EXPECT_NE(Bitstream::from_string("0101"), Bitstream::from_string("01010"));
}

}  // namespace
}  // namespace scbnn::sc
