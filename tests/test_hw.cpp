// Hardware cost-model tests: internal consistency, the paper's Table 3
// trends (exact), and magnitude bands against the published numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "hw/binary_design.h"
#include "hw/report.h"
#include "hw/stochastic_design.h"

namespace scbnn::hw {
namespace {

TEST(CostSheet, Rollups) {
  CostSheet s;
  s.add("a", 10.0, 2.0, 0.5);
  s.add("b", 5.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(s.total_ges(), 25.0);
  TechnologyParams tech;
  EXPECT_DOUBLE_EQ(s.area_mm2(tech), 25.0 * tech.gate_area_um2 * 1e-6);
  // energy/cycle = (10*2*0.5 + 5*1*1) * E_ge
  EXPECT_DOUBLE_EQ(s.energy_per_cycle_j(tech),
                   15.0 * tech.gate_energy_fj * 1e-15);
  EXPECT_DOUBLE_EQ(s.dynamic_power_w(tech, 1e9),
                   s.energy_per_cycle_j(tech) * 1e9);
}

TEST(GateLibrary, MonotonicInWidth) {
  EXPECT_LT(ge::comparator(4), ge::comparator(8));
  EXPECT_LT(ge::async_counter(4), ge::async_counter(8));
  EXPECT_LT(ge::array_multiplier(4), ge::array_multiplier(8));
  // Array multiplier is super-linear.
  EXPECT_GT(ge::array_multiplier(8), 3.0 * ge::array_multiplier(4));
}

TEST(StochasticDesign, CyclesPerFrame) {
  StochasticConvDesign d8(8);
  EXPECT_DOUBLE_EQ(d8.cycles_per_frame(), 32.0 * 256.0);
  StochasticConvDesign d4(4);
  EXPECT_DOUBLE_EQ(d4.cycles_per_frame(), 32.0 * 16.0);
}

TEST(StochasticDesign, FrameTimeHalvesPerBit) {
  for (unsigned bits = 3; bits <= 8; ++bits) {
    StochasticConvDesign lo(bits - 1), hi(bits);
    EXPECT_DOUBLE_EQ(hi.frame_time_s(), 2.0 * lo.frame_time_s());
  }
}

TEST(StochasticDesign, PowerRoughlyFlatAcrossPrecision) {
  // Paper: SC power stays ~constant (33 -> 28 mW from 8 to 2 bits).
  const double p8 = StochasticConvDesign(8).power_w();
  const double p2 = StochasticConvDesign(2).power_w();
  EXPECT_GT(p2, 0.75 * p8);
  EXPECT_LT(p2, p8);
}

TEST(StochasticDesign, EnergyDropsExponentially) {
  // ~2x energy per bit of precision removed.
  for (unsigned bits = 3; bits <= 8; ++bits) {
    const double hi = StochasticConvDesign(bits).energy_per_frame_j();
    const double lo = StochasticConvDesign(bits - 1).energy_per_frame_j();
    EXPECT_NEAR(hi / lo, 2.0, 0.2) << "bits=" << bits;
  }
}

TEST(StochasticDesign, AreaNearlyConstant) {
  const double a8 = StochasticConvDesign(8).area_mm2();
  const double a2 = StochasticConvDesign(2).area_mm2();
  EXPECT_LT(a8 / a2, 1.4);  // paper: 1.321 / 1.057 = 1.25
  EXPECT_GT(a8, a2);        // counters/SNG width still shrink slightly
}

TEST(BinaryDesign, AreaShrinksWithPrecision) {
  double prev = 1e9;
  for (unsigned bits : {8u, 7u, 6u, 5u, 4u, 3u, 2u}) {
    const double a = BinaryConvDesign(bits).area_mm2();
    EXPECT_LT(a, prev) << "bits=" << bits;
    prev = a;
  }
}

TEST(BinaryDesign, NormalizedPowerGrowsAsPrecisionFalls) {
  // The paper's throughput-normalization argument: matching the SC design's
  // exponentially faster frames costs the binary design exponentially more
  // power.
  double prev = 0.0;
  for (unsigned bits : {8u, 7u, 6u, 5u, 4u, 3u, 2u}) {
    StochasticConvDesign sc(bits);
    const double p = BinaryConvDesign(bits).normalized_power_w(sc);
    EXPECT_GT(p, prev) << "bits=" << bits;
    prev = p;
  }
}

TEST(BinaryDesign, RequiredClockMatchesThroughput) {
  StochasticConvDesign sc(8);
  BinaryConvDesign bin(8);
  const double f = bin.required_clock_hz(sc);
  // windows/frame / engines / frame_time
  const double expected = (784.0 * 32.0 / bin.engines()) / sc.frame_time_s();
  EXPECT_DOUBLE_EQ(f, expected);
  // ~33 MHz at 8-bit: plausible for 65 nm.
  EXPECT_GT(f, 1e6);
  EXPECT_LT(f, 2e9);
}

TEST(Headline, BreakEvenAtEightBits) {
  // Paper: SC "breaks even with binary designs at 8-bit precision".
  StochasticConvDesign sc(8);
  BinaryConvDesign bin(8);
  const double ratio =
      bin.energy_per_frame_j() / sc.energy_per_frame_j();
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.6);
}

TEST(Headline, RoughlyTenXAtFourBits) {
  // Paper: "9.8x more energy efficient at 4-bit precision".
  StochasticConvDesign sc(4);
  BinaryConvDesign bin(4);
  const double ratio =
      bin.energy_per_frame_j() / sc.energy_per_frame_j();
  EXPECT_GT(ratio, 7.0);
  EXPECT_LT(ratio, 13.0);
}

TEST(Headline, ScAreaRoughlyTwiceBinaryAtFourBits) {
  // Paper: "2x larger than the binary design at 4-bit precision".
  const double sc_area = StochasticConvDesign(4).area_mm2();
  const double bin_area = BinaryConvDesign(4).area_mm2();
  EXPECT_GT(sc_area / bin_area, 1.5);
  EXPECT_LT(sc_area / bin_area, 3.0);
}

class PaperBandTest : public ::testing::TestWithParam<int> {};

TEST_P(PaperBandTest, AllMetricsWithinBandsOfTable3) {
  const int i = GetParam();
  const unsigned bits = PaperTable3::kBits[static_cast<std::size_t>(i)];
  StochasticConvDesign sc(bits);
  BinaryConvDesign bin(bits);

  const double rel_tol = 0.30;  // the model is calibrated, not synthesized
  auto in_band = [rel_tol](double model, double paper) {
    return model > paper * (1.0 - rel_tol) && model < paper * (1.0 + rel_tol);
  };
  EXPECT_TRUE(in_band(sc.power_w() * 1e3,
                      PaperTable3::kThisWorkPowerMw[static_cast<std::size_t>(i)]))
      << "SC power @" << bits << ": " << sc.power_w() * 1e3;
  EXPECT_TRUE(in_band(bin.normalized_power_w(sc) * 1e3,
                      PaperTable3::kBinaryPowerMw[static_cast<std::size_t>(i)]))
      << "binary power @" << bits << ": " << bin.normalized_power_w(sc) * 1e3;
  EXPECT_TRUE(in_band(sc.energy_per_frame_j() * 1e9,
                      PaperTable3::kThisWorkEnergyNj[static_cast<std::size_t>(i)]))
      << "SC energy @" << bits;
  EXPECT_TRUE(in_band(bin.energy_per_frame_j() * 1e9,
                      PaperTable3::kBinaryEnergyNj[static_cast<std::size_t>(i)]))
      << "binary energy @" << bits;
  EXPECT_TRUE(in_band(sc.area_mm2(),
                      PaperTable3::kThisWorkAreaMm2[static_cast<std::size_t>(i)]))
      << "SC area @" << bits;
  EXPECT_TRUE(in_band(bin.area_mm2(),
                      PaperTable3::kBinaryAreaMm2[static_cast<std::size_t>(i)]))
      << "binary area @" << bits << ": " << bin.area_mm2();
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, PaperBandTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(Designs, WidthValidation) {
  EXPECT_THROW(StochasticConvDesign(1), std::invalid_argument);
  EXPECT_THROW(StochasticConvDesign(17), std::invalid_argument);
  EXPECT_THROW(BinaryConvDesign(1), std::invalid_argument);
  EXPECT_THROW(BinaryConvDesign(8, 0), std::invalid_argument);
}

TEST(TableWriter, FormatsNumbers) {
  EXPECT_EQ(TableWriter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::fmt_sci(0.000191, 2), "1.91e-04");
  EXPECT_THROW(TableWriter({"a"}, {4, 5}), std::invalid_argument);
}

TEST(Report, ScCyclesPerFrame) {
  // Section IV.A: kernels time-multiplexed passes of 2^bits cycles each.
  EXPECT_DOUBLE_EQ(sc_cycles_per_frame(8, 32), 32.0 * 256.0);
  EXPECT_DOUBLE_EQ(sc_cycles_per_frame(2, 32), 32.0 * 4.0);
  // Linear in the kernel count, exponential in precision.
  EXPECT_DOUBLE_EQ(sc_cycles_per_frame(5, 16), sc_cycles_per_frame(5, 32) / 2);
  EXPECT_DOUBLE_EQ(sc_cycles_per_frame(6, 32), 2 * sc_cycles_per_frame(5, 32));
  // Agrees with the full chip model's cycle accounting.
  EXPECT_DOUBLE_EQ(sc_cycles_per_frame(8, 32),
                   StochasticConvDesign(8).cycles_per_frame());
  // Backend dispatch: SC designs spend cycles, binary has no SC notion,
  // unknown names report 0 rather than guessing.
  EXPECT_DOUBLE_EQ(backend_sc_cycles_per_frame("sc-proposed", 4, 32),
                   sc_cycles_per_frame(4, 32));
  EXPECT_DOUBLE_EQ(backend_sc_cycles_per_frame("sc-conventional", 4, 32),
                   sc_cycles_per_frame(4, 32));
  EXPECT_DOUBLE_EQ(backend_sc_cycles_per_frame("binary-quantized", 4, 32),
                   0.0);
  EXPECT_DOUBLE_EQ(backend_sc_cycles_per_frame("no-such-chip", 4, 32), 0.0);
}

TEST(Report, BackendEnergyPerFrame) {
  // The calibrated models give non-zero per-frame energy for the built-in
  // backends; unknown names and out-of-range precisions report "no
  // estimate" (0.0) instead of throwing mid-bench.
  EXPECT_GT(backend_energy_per_frame_j("sc-proposed", 4), 0.0);
  EXPECT_GT(backend_energy_per_frame_j("binary-quantized", 4), 0.0);
  // Conventional SC shares the stochastic chip model.
  EXPECT_DOUBLE_EQ(backend_energy_per_frame_j("sc-conventional", 6),
                   backend_energy_per_frame_j("sc-proposed", 6));
  EXPECT_DOUBLE_EQ(backend_energy_per_frame_j("tpu-offload", 4), 0.0);
  EXPECT_DOUBLE_EQ(backend_energy_per_frame_j("sc-proposed", 63), 0.0);
}

TEST(Report, CanonicalBackendStripsFastSuffix) {
  // The SIMD fast backends are software restructurings of the same SC
  // chip — they must price exactly like their canonical design.
  EXPECT_EQ(canonical_backend("sc-proposed-fast"), "sc-proposed");
  EXPECT_EQ(canonical_backend("sc-conventional-fast"), "sc-conventional");
  EXPECT_EQ(canonical_backend("sc-proposed"), "sc-proposed");
  EXPECT_EQ(canonical_backend("binary-quantized"), "binary-quantized");
  // "-fast" alone (no stem) is not a backend alias.
  EXPECT_EQ(canonical_backend("-fast"), "-fast");
}

TEST(Report, FastBackendsPriceLikeCanonicalDesigns) {
  for (unsigned bits : {2u, 4u, 8u}) {
    EXPECT_DOUBLE_EQ(backend_energy_per_frame_j("sc-proposed-fast", bits),
                     backend_energy_per_frame_j("sc-proposed", bits));
    EXPECT_DOUBLE_EQ(backend_energy_per_frame_j("sc-conventional-fast", bits),
                     backend_energy_per_frame_j("sc-conventional", bits));
    EXPECT_DOUBLE_EQ(backend_sc_cycles_per_frame("sc-proposed-fast", bits, 32),
                     backend_sc_cycles_per_frame("sc-proposed", bits, 32));
  }
  EXPECT_GT(backend_energy_per_frame_j("sc-proposed-fast", 4), 0.0);
}

TEST(Report, AggregateRungEnergySumsPerRungTraffic) {
  EXPECT_DOUBLE_EQ(aggregate_rung_energy_j({}), 0.0);
  const double per_frame_3 = backend_energy_per_frame_j("sc-proposed", 3);
  const double per_frame_8 = backend_energy_per_frame_j("sc-proposed", 8);
  ASSERT_GT(per_frame_3, 0.0);
  // Every frame entering a rung pays that rung's per-frame cost.
  EXPECT_DOUBLE_EQ(aggregate_rung_energy_j({{"sc-proposed", 3, 32, 100}}),
                   100.0 * per_frame_3);
  EXPECT_DOUBLE_EQ(aggregate_rung_energy_j({{"sc-proposed", 3, 32, 100},
                                            {"sc-proposed", 8, 32, 25}}),
                   100.0 * per_frame_3 + 25.0 * per_frame_8);
  // Unmodeled rungs contribute nothing rather than poisoning the total.
  EXPECT_DOUBLE_EQ(aggregate_rung_energy_j({{"no-such-chip", 3, 32, 1000},
                                            {"sc-proposed", 3, 32, 100}}),
                   100.0 * per_frame_3);
  // Zero-traffic rungs cost nothing.
  EXPECT_DOUBLE_EQ(aggregate_rung_energy_j({{"sc-proposed", 3, 32, 0}}), 0.0);
}

}  // namespace
}  // namespace scbnn::hw
