// Multi-model serving tests: routing correctness (requests reach the model
// named in the request, predictions bit-identical to direct backend calls),
// per-model stats isolation, hot registration and drained deregistration
// under live traffic, error paths, and N models sharing one executor.
#include "runtime/model_router.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic_mnist.h"
#include "hybrid/experiment.h"
#include "hybrid/hybrid_network.h"
#include "nn/init.h"
#include "nn/quantize.h"
#include "runtime/adaptive_pipeline.h"
#include "runtime/inference_engine.h"
#include "runtime/thread_pool.h"

namespace scbnn::runtime {
namespace {

constexpr std::size_t kPixels =
    static_cast<std::size_t>(hybrid::kImageSize) * hybrid::kImageSize;

hybrid::LeNetConfig tiny_lenet() {
  hybrid::LeNetConfig cfg;
  cfg.conv1_kernels = 8;
  cfg.conv2_kernels = 8;
  cfg.dense_units = 32;
  cfg.dropout = 0.0f;
  return cfg;
}

/// Deterministic untrained backend at `bits` precision — two calls with the
/// same arguments build bit-identical Servables (same idiom as
/// tests/test_server.cpp; routing tests need distinguishable models, not
/// accurate ones).
std::shared_ptr<InferenceEngine> make_backend(unsigned bits,
                                              RuntimeConfig rc = {}) {
  nn::Rng base_rng(3);
  nn::Network base = hybrid::build_lenet(tiny_lenet(), base_rng);
  const auto qw =
      nn::quantize_conv_weights(hybrid::base_conv1_weights(base), bits);
  hybrid::FirstLayerConfig flc;
  flc.bits = bits;
  flc.soft_threshold = 0.3;
  rc.chunk_images = 3;
  auto engine = std::make_shared<InferenceEngine>("sc-proposed", qw, flc, rc);
  nn::Rng tail_rng(7);
  nn::Network tail = hybrid::build_tail(tiny_lenet(), tail_rng);
  hybrid::copy_tail_params(base, tail);
  engine->set_tail(std::move(tail));
  return engine;
}

nn::Tensor test_frames(int n) {
  return data::generate_synthetic_mnist(static_cast<std::size_t>(n), 1, 99)
      .train.images;
}

TEST(ModelRouter, RoutesRequestsToTheNamedModel) {
  const int n = 12;
  const nn::Tensor frames = test_frames(n);
  auto low = make_backend(3);
  auto high = make_backend(7);
  const auto direct_low = low->classify(frames);
  const auto direct_high = high->classify(frames);

  ModelRouter router;
  router.register_model("low", low);
  router.register_model("high", high);
  EXPECT_TRUE(router.contains("low"));
  EXPECT_EQ(router.model_ids(), (std::vector<std::string>{"high", "low"}));

  std::vector<std::future<Prediction>> low_futures;
  std::vector<std::future<Prediction>> high_futures;
  for (int i = 0; i < n; ++i) {
    const float* frame =
        frames.data() + static_cast<std::size_t>(i) * kPixels;
    low_futures.push_back(router.submit("low", frame));
    high_futures.push_back(router.submit("high", frame));
  }
  for (int i = 0; i < n; ++i) {
    const Prediction pl = low_futures[static_cast<std::size_t>(i)].get();
    const Prediction ph = high_futures[static_cast<std::size_t>(i)].get();
    EXPECT_EQ(pl.label, direct_low[static_cast<std::size_t>(i)].label);
    EXPECT_EQ(pl.margin, direct_low[static_cast<std::size_t>(i)].margin);
    EXPECT_EQ(pl.bits_used, 3u);
    EXPECT_EQ(ph.label, direct_high[static_cast<std::size_t>(i)].label);
    EXPECT_EQ(ph.margin, direct_high[static_cast<std::size_t>(i)].margin);
    EXPECT_EQ(ph.bits_used, 7u);
  }

  EXPECT_EQ(router.stats("low").completed, n);
  EXPECT_EQ(router.stats("high").completed, n);
  router.shutdown();
  EXPECT_TRUE(router.model_ids().empty());
}

TEST(ModelRouter, PerModelStatsAreIsolated) {
  const int n = 9;
  const nn::Tensor frames = test_frames(n);
  ModelRouter router;
  router.register_model("a", make_backend(3));
  router.register_model("b", make_backend(4));

  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < n; ++i) {
    futures.push_back(router.submit(
        "a", frames.data() + static_cast<std::size_t>(i) * kPixels));
  }
  futures.push_back(router.submit("b", frames.data()));
  for (auto& f : futures) (void)f.get();

  const ServerStats a = router.stats("a");
  const ServerStats b = router.stats("b");
  EXPECT_EQ(a.accepted, n);
  EXPECT_EQ(a.completed, n);
  EXPECT_EQ(b.accepted, 1);
  EXPECT_EQ(b.completed, 1);
  EXPECT_EQ(a.rejected + b.rejected, 0);
}

TEST(ModelRouter, UnknownAndInvalidIdsThrow) {
  ModelRouter router;
  router.register_model("only", make_backend(3));
  const nn::Tensor frame = test_frames(1);

  EXPECT_THROW((void)router.submit("nope", frame.data()), std::out_of_range);
  EXPECT_THROW((void)router.stats("nope"), std::out_of_range);
  EXPECT_THROW((void)router.backend("nope"), std::out_of_range);
  EXPECT_THROW((void)router.deregister_model("nope"), std::out_of_range);
  EXPECT_FALSE(router.contains("nope"));

  EXPECT_THROW(router.register_model("", make_backend(3)),
               std::invalid_argument);
  EXPECT_THROW(router.register_model("only", make_backend(3)),
               std::invalid_argument);
  EXPECT_THROW(router.register_model("null", nullptr),
               std::invalid_argument);
}

TEST(ModelRouter, HotRegistrationUnderLiveTraffic) {
  const int per_model = 40;
  const nn::Tensor frames = test_frames(per_model);
  auto first = make_backend(3);
  const auto direct_first = first->classify(frames);

  ModelRouter router;
  router.register_model("first", first);

  // A producer streams to "first" while the main thread hot-registers
  // "second" and serves a full stream through it.
  std::vector<std::future<Prediction>> first_futures(
      static_cast<std::size_t>(per_model));
  std::atomic<bool> started{false};
  std::thread producer([&] {
    for (int i = 0; i < per_model; ++i) {
      first_futures[static_cast<std::size_t>(i)] = router.submit(
          "first", frames.data() + static_cast<std::size_t>(i) * kPixels);
      started.store(true);
    }
  });
  while (!started.load()) std::this_thread::yield();

  auto second = make_backend(6);
  const auto direct_second = second->classify(frames);
  router.register_model("second", second);
  std::vector<std::future<Prediction>> second_futures;
  for (int i = 0; i < per_model; ++i) {
    second_futures.push_back(router.submit(
        "second", frames.data() + static_cast<std::size_t>(i) * kPixels));
  }
  producer.join();

  for (int i = 0; i < per_model; ++i) {
    EXPECT_EQ(first_futures[static_cast<std::size_t>(i)].get().label,
              direct_first[static_cast<std::size_t>(i)].label);
    EXPECT_EQ(second_futures[static_cast<std::size_t>(i)].get().label,
              direct_second[static_cast<std::size_t>(i)].label);
  }
  EXPECT_EQ(router.stats("first").completed, per_model);
  EXPECT_EQ(router.stats("second").completed, per_model);
}

TEST(ModelRouter, DeregisterDrainsOutstandingRequests) {
  const int n = 16;
  const nn::Tensor frames = test_frames(n);
  ModelRouter router;
  router.register_model("going", make_backend(3));
  router.register_model("staying", make_backend(4));

  auto futures = router.submit_burst("going", frames.data(), n);
  const ServerStats final_stats = router.deregister_model("going");
  EXPECT_FALSE(router.contains("going"));
  EXPECT_TRUE(router.contains("staying"));
  EXPECT_EQ(final_stats.accepted, n);
  EXPECT_EQ(final_stats.completed, n);
  for (auto& f : futures) EXPECT_GE(f.get().label, 0);

  // The survivor still serves.
  auto p = router.submit("staying", frames.data());
  EXPECT_GE(p.get().label, 0);
}

TEST(ModelRouter, ShutdownIsIdempotentAndFinal) {
  ModelRouter router;
  router.register_model("m", make_backend(3));
  const nn::Tensor frame = test_frames(1);
  router.shutdown();
  router.shutdown();
  EXPECT_TRUE(router.model_ids().empty());
  EXPECT_THROW((void)router.submit("m", frame.data()), std::out_of_range);
  EXPECT_THROW(router.register_model("late", make_backend(3)),
               std::runtime_error);
}

TEST(SharedExecutor, ModelsOnOnePoolMatchPrivatePoolModels) {
  const int n = 10;
  const nn::Tensor frames = test_frames(n);

  // Reference: private pools (the pre-refactor construction).
  RuntimeConfig private_rc;
  private_rc.threads = 2;
  auto ref_low = make_backend(3, private_rc);
  auto ref_high = make_backend(7, private_rc);
  const auto direct_low = ref_low->classify(frames);
  const auto direct_high = ref_high->classify(frames);

  RuntimeConfig shared_rc;
  shared_rc.executor = make_shared_executor(2);
  auto low = make_backend(3, shared_rc);
  auto high = make_backend(7, shared_rc);
  EXPECT_EQ(low->executor().get(), high->executor().get());
  EXPECT_EQ(low->threads(), 2u);

  const auto shared_low = low->classify(frames);
  const auto shared_high = high->classify(frames);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(shared_low[static_cast<std::size_t>(i)].label,
              direct_low[static_cast<std::size_t>(i)].label);
    EXPECT_EQ(shared_low[static_cast<std::size_t>(i)].margin,
              direct_low[static_cast<std::size_t>(i)].margin);
    EXPECT_EQ(shared_high[static_cast<std::size_t>(i)].label,
              direct_high[static_cast<std::size_t>(i)].label);
    EXPECT_EQ(shared_high[static_cast<std::size_t>(i)].margin,
              direct_high[static_cast<std::size_t>(i)].margin);
  }
}

TEST(SharedExecutor, RouterFleetOnOneExecutorServesConcurrently) {
  const int n = 24;
  const nn::Tensor frames = test_frames(n);
  RuntimeConfig rc;
  rc.executor = make_shared_executor(2);

  auto a = make_backend(3, rc);
  auto b = make_backend(5, rc);
  auto c = make_backend(7, rc);
  const auto direct_a = a->classify(frames);
  const auto direct_b = b->classify(frames);
  const auto direct_c = c->classify(frames);

  ModelRouter router;
  router.register_model("a", a);
  router.register_model("b", b);
  router.register_model("c", c);

  // Interleave submissions so the three batch formers overlap on the one
  // executor; every prediction must still match its model's direct result.
  std::vector<std::future<Prediction>> fa, fb, fc;
  for (int i = 0; i < n; ++i) {
    const float* frame =
        frames.data() + static_cast<std::size_t>(i) * kPixels;
    fa.push_back(router.submit("a", frame));
    fb.push_back(router.submit("b", frame));
    fc.push_back(router.submit("c", frame));
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(fa[static_cast<std::size_t>(i)].get().label,
              direct_a[static_cast<std::size_t>(i)].label);
    EXPECT_EQ(fb[static_cast<std::size_t>(i)].get().label,
              direct_b[static_cast<std::size_t>(i)].label);
    EXPECT_EQ(fc[static_cast<std::size_t>(i)].get().label,
              direct_c[static_cast<std::size_t>(i)].label);
  }

  // Models riding one executor all report the same fleet-wide counter
  // snapshot through the router — the point of the shared view.
  const ExecutorStats ea = router.executor_stats("a");
  EXPECT_EQ(ea.workers, 2u);
  EXPECT_GT(ea.parallel_fors, 0u);
  EXPECT_GT(ea.chunks_run, 0u);
  EXPECT_EQ(router.executor_stats("b").workers, 2u);
  EXPECT_THROW((void)router.executor_stats("nope"), std::out_of_range);
}

}  // namespace
}  // namespace scbnn::runtime
