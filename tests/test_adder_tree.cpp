#include "sc/adder_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "sc/lfsr.h"
#include "sc/sng.h"

namespace scbnn::sc {
namespace {

TEST(TreeLevels, CeilLog2) {
  EXPECT_EQ(tree_levels(1), 0u);
  EXPECT_EQ(tree_levels(2), 1u);
  EXPECT_EQ(tree_levels(3), 2u);
  EXPECT_EQ(tree_levels(4), 2u);
  EXPECT_EQ(tree_levels(5), 3u);
  EXPECT_EQ(tree_levels(25), 5u);
  EXPECT_EQ(tree_levels(32), 5u);
  EXPECT_EQ(tree_levels(33), 6u);
}

TEST(TreeScale, InverseOfLeafCount) {
  EXPECT_DOUBLE_EQ(tree_scale(2), 0.5);
  EXPECT_DOUBLE_EQ(tree_scale(25), 1.0 / 32.0);
  EXPECT_DOUBLE_EQ(tree_scale(32), 1.0 / 32.0);
}

std::vector<Bitstream> random_inputs(std::size_t k, std::size_t n,
                                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Bitstream> v;
  for (std::size_t i = 0; i < k; ++i) {
    std::bernoulli_distribution bit(
        std::uniform_real_distribution<double>(0.0, 1.0)(rng));
    Bitstream s(n);
    for (std::size_t t = 0; t < n; ++t) s.set_bit(t, bit(rng));
    v.push_back(std::move(s));
  }
  return v;
}

class TffTreeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TffTreeTest, SumWithinPerNodeRounding) {
  const std::size_t k = GetParam();
  const std::size_t n = 256;
  const auto inputs = random_inputs(k, n, 1000 + k);
  double exact = 0.0;
  for (const auto& s : inputs) exact += s.unipolar();
  const unsigned levels = tree_levels(k);
  const double scale = tree_scale(k);
  const Bitstream root = tff_adder_tree(inputs, TffInitPolicy::kAlternating);
  // Each of the (2^levels - 1) nodes contributes at most half an output ULP
  // of rounding; accumulated worst case is levels/2 ULP at the root.
  const double bound =
      (static_cast<double>(levels) / 2.0 + 0.5) / static_cast<double>(n);
  EXPECT_NEAR(root.unipolar(), exact * scale, bound) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(FanIns, TffTreeTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u,
                                           25u, 32u));

TEST(TffTree, AllZeroPolicyRoundsDown) {
  // Sum of two odd singleton streams: 2 ones / 2 = 1 exactly; with four
  // inputs of one 1 each the tree output is 4/4... use odd sums instead.
  std::vector<Bitstream> inputs;
  inputs.push_back(Bitstream::prefix_ones(8, 1));
  inputs.push_back(Bitstream::prefix_ones(8, 0));
  const Bitstream down = tff_adder_tree(inputs, TffInitPolicy::kAllZero);
  const Bitstream up = tff_adder_tree(inputs, TffInitPolicy::kAllOne);
  EXPECT_EQ(down.count_ones(), 0u);  // floor(1/2)
  EXPECT_EQ(up.count_ones(), 1u);    // ceil(1/2)
}

TEST(TffTree, PadsWithZeroStreams) {
  // 3 inputs pad to 4; scale is 1/4.
  std::vector<Bitstream> inputs(3, Bitstream::prefix_ones(16, 8));
  const Bitstream root = tff_adder_tree(inputs, TffInitPolicy::kAlternating);
  EXPECT_NEAR(root.unipolar(), 3.0 * 0.5 / 4.0, 1.5 / 16.0);
}

TEST(TffTree, ExactWhenRepresentable) {
  // All inputs equal with even counts at every node: zero rounding.
  std::vector<Bitstream> inputs(4, Bitstream::prefix_ones(16, 8));
  const Bitstream root = tff_adder_tree(inputs, TffInitPolicy::kAllZero);
  EXPECT_EQ(root.count_ones(), 8u);
}

TEST(TffTree, RejectsEmptyAndMismatched) {
  EXPECT_THROW((void)tff_adder_tree({}, TffInitPolicy::kAllZero),
               std::invalid_argument);
  std::vector<Bitstream> bad = {Bitstream(8), Bitstream(9)};
  EXPECT_THROW((void)tff_adder_tree(bad, TffInitPolicy::kAllZero),
               std::invalid_argument);
}

TEST(MuxTree, HalfSumInExpectation) {
  const std::size_t n = 2048;
  const std::size_t k = 8;
  const auto inputs = random_inputs(k, n, 77);
  double exact = 0.0;
  for (const auto& s : inputs) exact += s.unipolar();

  const Bitstream root = mux_adder_tree(inputs, [n](std::size_t node) {
    Lfsr sel(8, static_cast<std::uint32_t>(17 * node + 3));
    return generate_stream(sel, 128, n);
  });
  EXPECT_NEAR(root.unipolar(), exact / 8.0, 0.05);
}

TEST(MuxTree, NoisierThanTffTree) {
  // The variance claim behind Table 2: across many trials, the MUX tree's
  // squared error exceeds the TFF tree's.
  const std::size_t n = 256;
  double mux_sq = 0.0, tff_sq = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    const auto inputs = random_inputs(8, n, 500 + trial);
    double exact = 0.0;
    for (const auto& s : inputs) exact += s.unipolar();
    exact /= 8.0;

    const Bitstream mux_root =
        mux_adder_tree(inputs, [n, trial](std::size_t node) {
          Lfsr sel(8, static_cast<std::uint32_t>(13 * node + trial + 1));
          return generate_stream(sel, 128, n);
        });
    const Bitstream tff_root =
        tff_adder_tree(inputs, TffInitPolicy::kAlternating);
    mux_sq += std::pow(mux_root.unipolar() - exact, 2);
    tff_sq += std::pow(tff_root.unipolar() - exact, 2);
  }
  EXPECT_LT(tff_sq, mux_sq);
}

TEST(MuxTree, SelectFactoryReceivesAllNodeIndices) {
  std::vector<bool> seen(7, false);
  std::vector<Bitstream> inputs(8, Bitstream(16));
  (void)mux_adder_tree(inputs, [&seen](std::size_t node) {
    seen.at(node) = true;
    return Bitstream(16);
  });
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "node " << i;
  }
}

}  // namespace
}  // namespace scbnn::sc
