#include "nn/quantize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv2d.h"
#include "nn/init.h"

namespace scbnn::nn {
namespace {

Tensor sample_weights(int out_c, std::uint64_t seed) {
  Rng rng(seed);
  Tensor w({out_c, 1, 5, 5});
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.normal(0.0f, 0.3f);
  return w;
}

TEST(Quantize, LevelsWithinRange) {
  const Tensor w = sample_weights(4, 1);
  const auto q = quantize_conv_weights(w, 8);
  EXPECT_EQ(q.kernels.size(), 4u);
  for (const auto& k : q.kernels) {
    EXPECT_EQ(k.levels.size(), 25u);
    for (int lv : k.levels) {
      EXPECT_GE(lv, -256);
      EXPECT_LE(lv, 256);
    }
  }
}

TEST(Quantize, PerKernelScaleIsMaxAbs) {
  Tensor w({1, 1, 2, 2});
  w[0] = 0.1f; w[1] = -0.8f; w[2] = 0.3f; w[3] = 0.0f;
  const auto q = quantize_conv_weights(w, 8);
  EXPECT_NEAR(q.kernels[0].scale, 0.8f, 1e-6f);
  // The max-magnitude weight maps to the full level.
  EXPECT_EQ(q.kernels[0].levels[1], -256);
}

TEST(Quantize, WeightScalingUsesFullDynamicRange) {
  // Tiny weights still quantize to meaningful levels thanks to per-kernel
  // scaling (Kim et al. [16]) — without it they would all collapse to 0.
  Tensor w({1, 1, 2, 2});
  w[0] = 1e-3f; w[1] = -5e-4f; w[2] = 2.5e-4f; w[3] = 0.0f;
  const auto q = quantize_conv_weights(w, 4);
  EXPECT_EQ(q.kernels[0].levels[0], 16);   // full positive level
  EXPECT_EQ(q.kernels[0].levels[1], -8);
  EXPECT_EQ(q.kernels[0].levels[2], 4);
}

TEST(Quantize, RoundTripErrorBounded) {
  const Tensor w = sample_weights(8, 2);
  for (unsigned bits : {4u, 8u}) {
    const auto q = quantize_conv_weights(w, bits);
    const Tensor back = dequantize_conv_weights(q);
    ASSERT_EQ(back.shape(), w.shape());
    const double full = static_cast<double>(1u << bits);
    for (int oc = 0; oc < w.dim(0); ++oc) {
      const float scale = q.kernels[static_cast<std::size_t>(oc)].scale;
      for (int i = 0; i < 25; ++i) {
        const std::size_t idx = static_cast<std::size_t>(oc) * 25 + i;
        // Quantization step is scale / 2^bits; round-off <= half a step.
        EXPECT_NEAR(back[idx], w[idx], 0.5 * scale / full + 1e-6)
            << "bits=" << bits;
      }
    }
  }
}

TEST(Quantize, MoreBitsMeansLessError) {
  const Tensor w = sample_weights(8, 3);
  auto total_err = [&w](unsigned bits) {
    const Tensor back = dequantize_conv_weights(quantize_conv_weights(w, bits));
    double e = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      e += std::abs(static_cast<double>(back[i]) - w[i]);
    }
    return e;
  };
  EXPECT_LT(total_err(8), total_err(4));
  EXPECT_LT(total_err(4), total_err(2));
}

TEST(Quantize, SignInvarianceUnderKernelScaling) {
  // Positive per-kernel scaling cannot change the sign of any dot product —
  // the property that makes weight scaling exact for this design.
  Rng rng(4);
  const Tensor w = sample_weights(1, 5);
  const auto q = quantize_conv_weights(w, 12);  // high precision
  const Tensor back = dequantize_conv_weights(q);
  for (int trial = 0; trial < 50; ++trial) {
    double dot_orig = 0.0, dot_deq = 0.0;
    for (int i = 0; i < 25; ++i) {
      const float x = rng.uniform(0.0f, 1.0f);
      dot_orig += static_cast<double>(x) * w[static_cast<std::size_t>(i)];
      dot_deq += static_cast<double>(x) * back[static_cast<std::size_t>(i)];
    }
    if (std::abs(dot_orig) > 1e-2) {  // away from the rounding boundary
      EXPECT_EQ(dot_orig > 0, dot_deq > 0) << "trial " << trial;
    }
  }
}

TEST(Quantize, ZeroKernelHandled) {
  Tensor w({1, 1, 2, 2});  // all zeros
  const auto q = quantize_conv_weights(w, 8);
  EXPECT_EQ(q.kernels[0].scale, 1.0f);
  for (int lv : q.kernels[0].levels) EXPECT_EQ(lv, 0);
}

TEST(Quantize, Validation) {
  Tensor bad({2, 3});
  EXPECT_THROW((void)quantize_conv_weights(bad, 8), std::invalid_argument);
  Tensor w({1, 1, 2, 2});
  EXPECT_THROW((void)quantize_conv_weights(w, 1), std::invalid_argument);
  EXPECT_THROW((void)quantize_conv_weights(w, 17), std::invalid_argument);
}

TEST(QuantizeActivations, GridAndClamping) {
  const float x[5] = {0.0f, 0.5f, 1.0f, -0.2f, 1.7f};
  const auto q = quantize_activations(x, 5, 4);
  EXPECT_EQ(q[0], 0u);
  EXPECT_EQ(q[1], 8u);
  EXPECT_EQ(q[2], 16u);
  EXPECT_EQ(q[3], 0u);   // clamped low
  EXPECT_EQ(q[4], 16u);  // clamped high
}

class QuantizeBitsSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(QuantizeBitsSweep, LevelMagnitudeNeverExceedsFullScale) {
  const unsigned bits = GetParam();
  const Tensor w = sample_weights(4, 100 + bits);
  const auto q = quantize_conv_weights(w, bits);
  const int full = 1 << bits;
  for (const auto& k : q.kernels) {
    int max_abs = 0;
    for (int lv : k.levels) max_abs = std::max(max_abs, std::abs(lv));
    EXPECT_LE(max_abs, full);
    EXPECT_EQ(max_abs, full);  // scaling guarantees the extremum hits full
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantizeBitsSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace scbnn::nn
