#include "sc/fault.h"

#include <gtest/gtest.h>

#include <cmath>

namespace scbnn::sc {
namespace {

TEST(StreamFaults, ZeroBerIsIdentity) {
  const Bitstream s = Bitstream::from_string("0110 1001");
  EXPECT_EQ(inject_stream_faults(s, 0.0, 1), s);
}

TEST(StreamFaults, FullBerInvertsEverything) {
  const Bitstream s = Bitstream::from_string("0110 1001");
  EXPECT_EQ(inject_stream_faults(s, 1.0, 1), ~s);
}

TEST(StreamFaults, FlipRateMatchesBer) {
  const Bitstream s = Bitstream::prefix_ones(8192, 4096);
  const double ber = 0.05;
  const Bitstream faulted = inject_stream_faults(s, ber, 7);
  const double flipped =
      static_cast<double>((s ^ faulted).count_ones()) / 8192.0;
  EXPECT_NEAR(flipped, ber, 0.01);
}

TEST(StreamFaults, ValueErrorBoundedByBer) {
  // A stream's value error under BER p is at most p (each flip moves one
  // count), and typically smaller since flips partially cancel.
  const Bitstream s = Bitstream::prefix_ones(4096, 1024);  // value 0.25
  for (double ber : {0.01, 0.05, 0.1}) {
    const Bitstream faulted = inject_stream_faults(s, ber, 3);
    EXPECT_LE(std::abs(faulted.unipolar() - s.unipolar()),
              stream_fault_error_bound(ber) + 0.02)
        << "ber " << ber;
  }
}

TEST(StreamFaults, Deterministic) {
  const Bitstream s = Bitstream::prefix_ones(256, 100);
  EXPECT_EQ(inject_stream_faults(s, 0.1, 42), inject_stream_faults(s, 0.1, 42));
  EXPECT_NE(inject_stream_faults(s, 0.1, 42), inject_stream_faults(s, 0.1, 43));
}

TEST(StreamFaults, BadBerRejected) {
  EXPECT_THROW((void)inject_stream_faults(Bitstream(8), -0.1, 1),
               std::invalid_argument);
  EXPECT_THROW((void)inject_stream_faults(Bitstream(8), 1.1, 1),
               std::invalid_argument);
}

TEST(WordFaults, ZeroBerIsIdentity) {
  EXPECT_EQ(inject_word_faults(0xA5, 8, 0.0, 1), 0xA5u);
}

TEST(WordFaults, FullBerInvertsWithinWidth) {
  EXPECT_EQ(inject_word_faults(0xA5, 8, 1.0, 1), 0x5Au);
  EXPECT_EQ(inject_word_faults(0x0F, 4, 1.0, 1), 0x0u);
}

TEST(WordFaults, MsbFlipIsCatastrophic) {
  // The asymmetry the SC literature points at: one flipped stream bit costs
  // 1/N of full scale; one flipped MSB costs 1/2 of full scale.
  const double stream_damage = 1.0 / 256.0;
  const double msb_damage = 128.0 / 256.0;
  EXPECT_GT(msb_damage, 100.0 * stream_damage);
}

TEST(WordFaults, AnalyticRmsMatchesSimulation) {
  const unsigned bits = 8;
  const double ber = 0.02;
  double acc = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const std::uint32_t faulted = inject_word_faults(
        200, bits, ber, static_cast<std::uint64_t>(t) + 1000);
    const double err = (static_cast<double>(faulted) - 200.0) / 256.0;
    acc += err * err;
  }
  EXPECT_NEAR(std::sqrt(acc / trials), word_fault_rms(bits, ber), 0.01);
}

TEST(WordFaults, RmsGrowsWithWidthWeighting) {
  // Wider words concentrate more damage in high-order bits.
  EXPECT_GT(word_fault_rms(8, 0.01), word_fault_rms(4, 0.01) * 0.99);
  EXPECT_LT(word_fault_rms(8, 0.001), word_fault_rms(8, 0.01));
}

TEST(WordFaults, Validation) {
  EXPECT_THROW((void)inject_word_faults(0, 0, 0.1, 1), std::invalid_argument);
  EXPECT_THROW((void)inject_word_faults(0, 8, 2.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace scbnn::sc
