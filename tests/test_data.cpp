#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/dataset.h"
#include "data/mnist.h"
#include "data/synthetic_mnist.h"

namespace scbnn::data {
namespace {

TEST(SyntheticMnist, ImageShapeAndRange) {
  const nn::Tensor img = render_digit(3, 0);
  EXPECT_EQ(img.shape(), (std::vector<int>{1, 1, 28, 28}));
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_GE(img[i], 0.0f);
    EXPECT_LE(img[i], 1.0f);
  }
}

TEST(SyntheticMnist, DeterministicPerInstance) {
  const nn::Tensor a = render_digit(5, 17);
  const nn::Tensor b = render_digit(5, 17);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(SyntheticMnist, InstancesDiffer) {
  const nn::Tensor a = render_digit(5, 1);
  const nn::Tensor b = render_digit(5, 2);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(SyntheticMnist, DigitsHaveInk) {
  for (int d = 0; d < 10; ++d) {
    const nn::Tensor img = render_digit(d, 0);
    double ink = 0.0;
    for (std::size_t i = 0; i < img.size(); ++i) ink += img[i];
    EXPECT_GT(ink, 10.0) << "digit " << d << " rendered blank";
    EXPECT_LT(ink, 400.0) << "digit " << d << " rendered solid";
  }
}

TEST(SyntheticMnist, ClassesAreVisuallyDistinct) {
  // Mean intra-class distance must be smaller than mean inter-class
  // distance — a weak but necessary condition for learnability.
  const int per_class = 6;
  std::vector<std::vector<nn::Tensor>> imgs(10);
  for (int d = 0; d < 10; ++d) {
    for (int i = 0; i < per_class; ++i) {
      imgs[static_cast<std::size_t>(d)].push_back(
          render_digit(d, static_cast<std::uint64_t>(i)));
    }
  }
  auto dist = [](const nn::Tensor& a, const nn::Tensor& b) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = static_cast<double>(a[i]) - b[i];
      s += d * d;
    }
    return std::sqrt(s);
  };
  double intra = 0.0;
  int intra_n = 0;
  double inter = 0.0;
  int inter_n = 0;
  for (int d = 0; d < 10; ++d) {
    for (int i = 0; i < per_class; ++i) {
      for (int j = i + 1; j < per_class; ++j) {
        intra += dist(imgs[d][i], imgs[d][j]);
        ++intra_n;
      }
      const int other = (d + 1) % 10;
      inter += dist(imgs[d][i], imgs[other][i]);
      ++inter_n;
    }
  }
  EXPECT_LT(intra / intra_n, inter / inter_n);
}

TEST(SyntheticMnist, SplitShapesAndBalance) {
  const DataSplit split = generate_synthetic_mnist(200, 50, 9);
  EXPECT_EQ(split.train.size(), 200u);
  EXPECT_EQ(split.test.size(), 50u);
  EXPECT_EQ(split.train.images.dim(0), 200);
  const auto hist = class_histogram(split.train);
  for (int c = 0; c < 10; ++c) EXPECT_EQ(hist[static_cast<std::size_t>(c)], 20);
}

TEST(SyntheticMnist, TrainAndTestDisjoint) {
  const DataSplit split = generate_synthetic_mnist(100, 100, 11);
  // Same digit class, same slot index: train and test come from disjoint
  // instance streams so images must differ.
  double diff = 0.0;
  for (std::size_t i = 0; i < 100 * 28 * 28; ++i) {
    diff += std::abs(static_cast<double>(split.train.images[i]) -
                     split.test.images[i]);
  }
  EXPECT_GT(diff, 10.0);
}

TEST(SyntheticMnist, SeedChangesData) {
  const DataSplit a = generate_synthetic_mnist(50, 10, 1);
  const DataSplit b = generate_synthetic_mnist(50, 10, 2);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.train.images.size(); ++i) {
    diff += std::abs(static_cast<double>(a.train.images[i]) -
                     b.train.images[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(Dataset, HeadTruncates) {
  const DataSplit split = generate_synthetic_mnist(40, 10, 3);
  const Dataset h = head(split.train, 15);
  EXPECT_EQ(h.size(), 15u);
  EXPECT_EQ(h.images.dim(0), 15);
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_EQ(h.labels[i], split.train.labels[i]);
  }
  // n beyond size clamps.
  EXPECT_EQ(head(split.test, 100).size(), 10u);
}

class IdxRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "scbnn_idx_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static void write_be32(std::ofstream& f, std::uint32_t v) {
    const unsigned char b[4] = {
        static_cast<unsigned char>(v >> 24), static_cast<unsigned char>(v >> 16),
        static_cast<unsigned char>(v >> 8), static_cast<unsigned char>(v)};
    f.write(reinterpret_cast<const char*>(b), 4);
  }

  void write_pair(int n, const std::string& img_name,
                  const std::string& lab_name) {
    std::ofstream fi(dir_ / img_name, std::ios::binary);
    write_be32(fi, 0x803);
    write_be32(fi, static_cast<std::uint32_t>(n));
    write_be32(fi, 28);
    write_be32(fi, 28);
    for (int i = 0; i < n; ++i) {
      for (int p = 0; p < 784; ++p) {
        const unsigned char v = static_cast<unsigned char>((i * 7 + p) % 256);
        fi.write(reinterpret_cast<const char*>(&v), 1);
      }
    }
    std::ofstream fl(dir_ / lab_name, std::ios::binary);
    write_be32(fl, 0x801);
    write_be32(fl, static_cast<std::uint32_t>(n));
    for (int i = 0; i < n; ++i) {
      const unsigned char v = static_cast<unsigned char>(i % 10);
      fl.write(reinterpret_cast<const char*>(&v), 1);
    }
  }

  std::filesystem::path dir_;
};

TEST_F(IdxRoundTrip, LoadsWrittenData) {
  write_pair(5, "imgs", "labs");
  const Dataset d = load_idx_pair((dir_ / "imgs").string(),
                                  (dir_ / "labs").string());
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.labels[3], 3);
  EXPECT_NEAR(d.images[0], 0.0f, 1e-6f);
  EXPECT_NEAR(d.images[1], 1.0f / 255.0f, 1e-6f);
}

TEST_F(IdxRoundTrip, FullSplitViaDirectory) {
  write_pair(8, "train-images-idx3-ubyte", "train-labels-idx1-ubyte");
  write_pair(4, "t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte");
  const auto split = try_load_mnist_idx(dir_.string());
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->train.size(), 8u);
  EXPECT_EQ(split->test.size(), 4u);
}

TEST_F(IdxRoundTrip, MissingFilesReturnNullopt) {
  EXPECT_FALSE(try_load_mnist_idx(dir_.string()).has_value());
}

TEST_F(IdxRoundTrip, BadMagicRejected) {
  std::ofstream fi(dir_ / "imgs", std::ios::binary);
  write_be32(fi, 0xDEADBEEF);
  fi.close();
  std::ofstream fl(dir_ / "labs", std::ios::binary);
  write_be32(fl, 0x801);
  write_be32(fl, 0);
  fl.close();
  EXPECT_THROW((void)load_idx_pair((dir_ / "imgs").string(),
                                   (dir_ / "labs").string()),
               std::runtime_error);
}

TEST(ResolveDataset, FallsBackToSynthetic) {
  // Without MNIST_DIR (or with it unset/missing) the synthetic generator
  // must provide the requested sizes.
  const auto resolved = resolve_dataset(30, 10, 5);
  EXPECT_EQ(resolved.split.train.size(), 30u);
  EXPECT_EQ(resolved.split.test.size(), 10u);
}

}  // namespace
}  // namespace scbnn::data
