// First-layer engine tests: the binary reference must be exact, the
// proposed SC engine close to it, the conventional SC engine noisier —
// the feature-level expression of the paper's Table 3 ordering.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_mnist.h"
#include "hybrid/binary_first_layer.h"
#include "hybrid/first_layer.h"
#include "hybrid/sc_first_layer.h"
#include "hybrid/sc_first_layer_fast.h"
#include "nn/init.h"
#include "nn/quantize.h"
#include "runtime/backend_registry.h"

namespace scbnn::hybrid {
namespace {

nn::QuantizedConvWeights sample_qweights(int kernels, unsigned bits,
                                         std::uint64_t seed) {
  nn::Rng rng(seed);
  nn::Tensor w({kernels, 1, 5, 5});
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.normal(0.0f, 0.3f);
  return nn::quantize_conv_weights(w, bits);
}

nn::Tensor sample_image(std::uint64_t instance) {
  return data::render_digit(static_cast<int>(instance % 10), instance / 10);
}

double agreement(const std::vector<float>& a, const std::vector<float>& b) {
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(a.size());
}

std::vector<float> run_engine(const FirstLayerEngine& e,
                              const nn::Tensor& img) {
  std::vector<float> out(static_cast<std::size_t>(e.kernels()) * 28 * 28);
  e.compute(img.data(), out.data());
  return out;
}

TEST(BinaryFirstLayer, OutputsAreTernary) {
  const auto qw = sample_qweights(4, 8, 1);
  FirstLayerConfig cfg;
  cfg.bits = 8;
  BinaryFirstLayer engine(qw, cfg);
  const auto out = run_engine(engine, sample_image(3));
  for (float v : out) {
    EXPECT_TRUE(v == -1.0f || v == 0.0f || v == 1.0f);
  }
}

TEST(BinaryFirstLayer, MatchesFloatConvolutionSigns) {
  // At 8-bit quantization the integer engine must agree with a float
  // convolution + sign almost everywhere (disagreements only within a
  // quantization step of the decision boundary).
  nn::Rng rng(2);
  nn::Tensor w({2, 1, 5, 5});
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.normal(0.0f, 0.3f);
  const auto qw = nn::quantize_conv_weights(w, 8);
  FirstLayerConfig cfg;
  cfg.bits = 8;
  BinaryFirstLayer engine(qw, cfg);
  const nn::Tensor img = sample_image(7);
  const auto out = run_engine(engine, img);

  std::size_t mismatches = 0;
  for (int k = 0; k < 2; ++k) {
    for (int oy = 0; oy < 28; ++oy) {
      for (int ox = 0; ox < 28; ++ox) {
        double dot = 0.0;
        for (int ki = 0; ki < 5; ++ki) {
          for (int kj = 0; kj < 5; ++kj) {
            const int iy = oy + ki - 2, ix = ox + kj - 2;
            if (iy < 0 || iy >= 28 || ix < 0 || ix >= 28) continue;
            dot += static_cast<double>(img.at4(0, 0, iy, ix)) *
                   w.at4(k, 0, ki, kj);
          }
        }
        const float expect = dot > 1e-3 ? 1.0f : (dot < -1e-3 ? -1.0f : 0.0f);
        const float got = out[static_cast<std::size_t>(k) * 784 +
                              static_cast<std::size_t>(oy) * 28 + ox];
        if (std::abs(dot) > 5e-2 && got != expect) ++mismatches;
      }
    }
  }
  EXPECT_LT(mismatches, 16u);  // ~1% of 1568 outputs
}

/// Exact normalized dot-product values of every window for one kernel set,
/// used to restrict agreement checks to decisive windows (|v| above SC's
/// count granularity). Near-zero windows are *expected* to differ: SC is
/// inexact at near-zero values (Section V.B), which is why the paper adds
/// soft thresholding and retraining.
std::vector<double> exact_values(const nn::QuantizedConvWeights& qw,
                                 const nn::Tensor& img) {
  const double full = static_cast<double>(1u << qw.bits);
  std::vector<double> v(qw.kernels.size() * 784);
  for (std::size_t k = 0; k < qw.kernels.size(); ++k) {
    for (int oy = 0; oy < 28; ++oy) {
      for (int ox = 0; ox < 28; ++ox) {
        double dot = 0.0;
        for (int ki = 0; ki < 5; ++ki) {
          for (int kj = 0; kj < 5; ++kj) {
            const int iy = oy + ki - 2, ix = ox + kj - 2;
            if (iy < 0 || iy >= 28 || ix < 0 || ix >= 28) continue;
            const double xl =
                std::round(static_cast<double>(img.at4(0, 0, iy, ix)) * full);
            dot += (xl / full) *
                   (qw.kernels[k].levels[static_cast<std::size_t>(ki * 5 + kj)] /
                    full);
          }
        }
        v[k * 784 + static_cast<std::size_t>(oy) * 28 + ox] = dot;
      }
    }
  }
  return v;
}

TEST(ScFirstLayer, ProposedMatchesBinaryOnDecisiveWindows) {
  const auto qw = sample_qweights(4, 8, 3);
  FirstLayerConfig cfg;
  cfg.bits = 8;
  BinaryFirstLayer ref(qw, cfg);
  StochasticFirstLayer sc(StochasticFirstLayer::Style::kProposed, qw, cfg);
  const nn::Tensor img = sample_image(11);
  const auto a = run_engine(ref, img);
  const auto b = run_engine(sc, img);
  const auto v = exact_values(qw, img);
  std::size_t decisive = 0, same = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (std::abs(v[i]) > 0.3) {  // above the SC tree's rounding resolution
      ++decisive;
      if (a[i] == b[i]) ++same;
    }
  }
  ASSERT_GT(decisive, 100u);
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(decisive), 0.98);
}

TEST(ScFirstLayer, NearZeroWindowsQuantizeToZero) {
  // SC's count granularity maps sub-resolution dot products to 0 — the
  // near-zero inexactness the paper mitigates with soft thresholding.
  const auto qw = sample_qweights(4, 8, 3);
  FirstLayerConfig cfg;
  cfg.bits = 8;
  StochasticFirstLayer sc(StochasticFirstLayer::Style::kProposed, qw, cfg);
  const nn::Tensor img = sample_image(11);
  const auto b = run_engine(sc, img);
  const auto v = exact_values(qw, img);
  std::size_t tiny = 0, zeroed = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (std::abs(v[i]) < 0.03) {
      ++tiny;
      if (b[i] == 0.0f) ++zeroed;
    }
  }
  ASSERT_GT(tiny, 50u);
  // Most sub-resolution windows quantize to 0; per-node tree rounding can
  // still nudge a minority to a +/-1 count.
  EXPECT_GT(static_cast<double>(zeroed) / static_cast<double>(tiny), 0.8);
}

TEST(ScFirstLayer, ProposedBeatsConventional) {
  // The paper's central accuracy claim at the feature level: restrict to
  // decisive windows (|exact dot| above the SC count resolution), where
  // arithmetic quality — not the shared near-zero ambiguity — decides.
  for (unsigned bits : {6u, 8u}) {
    const auto qw = sample_qweights(4, bits, 4);
    FirstLayerConfig cfg;
    cfg.bits = bits;
    BinaryFirstLayer ref(qw, cfg);
    StochasticFirstLayer prop(StochasticFirstLayer::Style::kProposed, qw, cfg);
    StochasticFirstLayer conv(StochasticFirstLayer::Style::kConventional, qw,
                              cfg);
    std::size_t decisive = 0, same_prop = 0, same_conv = 0;
    for (std::uint64_t i = 0; i < 5; ++i) {
      const nn::Tensor img = sample_image(20 + i);
      const auto r = run_engine(ref, img);
      const auto p = run_engine(prop, img);
      const auto c = run_engine(conv, img);
      const auto v = exact_values(qw, img);
      for (std::size_t j = 0; j < v.size(); ++j) {
        if (std::abs(v[j]) > 0.5) {
          ++decisive;
          if (r[j] == p[j]) ++same_prop;
          if (r[j] == c[j]) ++same_conv;
        }
      }
    }
    ASSERT_GT(decisive, 200u);
    EXPECT_GT(same_prop, same_conv) << "bits=" << bits;
  }
}

TEST(ScFirstLayer, AgreementDegradesWithPrecision) {
  FirstLayerConfig cfg8, cfg4;
  cfg8.bits = 8;
  cfg4.bits = 4;
  const auto qw8 = sample_qweights(4, 8, 5);
  const auto qw4 = sample_qweights(4, 4, 5);
  BinaryFirstLayer ref8(qw8, cfg8);
  BinaryFirstLayer ref4(qw4, cfg4);
  StochasticFirstLayer sc8(StochasticFirstLayer::Style::kProposed, qw8, cfg8);
  StochasticFirstLayer sc4(StochasticFirstLayer::Style::kProposed, qw4, cfg4);
  const nn::Tensor img = sample_image(31);
  const double a8 = agreement(run_engine(ref8, img), run_engine(sc8, img));
  const double a4 = agreement(run_engine(ref4, img), run_engine(sc4, img));
  EXPECT_GT(a8, a4);
}

TEST(ScFirstLayer, SoftThresholdZeroesSmallResponses) {
  const auto qw = sample_qweights(4, 8, 6);
  FirstLayerConfig plain;
  plain.bits = 8;
  FirstLayerConfig thresholded = plain;
  thresholded.soft_threshold = 1.0;
  StochasticFirstLayer a(StochasticFirstLayer::Style::kProposed, qw, plain);
  StochasticFirstLayer b(StochasticFirstLayer::Style::kProposed, qw,
                         thresholded);
  const nn::Tensor img = sample_image(41);
  const auto out_a = run_engine(a, img);
  const auto out_b = run_engine(b, img);
  std::size_t zeros_a = 0, zeros_b = 0;
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    if (out_a[i] == 0.0f) ++zeros_a;
    if (out_b[i] == 0.0f) ++zeros_b;
  }
  EXPECT_GT(zeros_b, zeros_a);
}

TEST(ScFirstLayer, DeterministicAcrossCalls) {
  const auto qw = sample_qweights(2, 6, 7);
  FirstLayerConfig cfg;
  cfg.bits = 6;
  StochasticFirstLayer sc(StochasticFirstLayer::Style::kConventional, qw, cfg);
  const nn::Tensor img = sample_image(51);
  EXPECT_EQ(run_engine(sc, img), run_engine(sc, img));
}

TEST(FirstLayerEngine, BatchWrapperShapesAndParallelism) {
  const auto qw = sample_qweights(3, 4, 8);
  FirstLayerConfig cfg;
  cfg.bits = 4;
  const auto engine =
      make_first_layer_engine(FirstLayerDesign::kScProposed, qw, cfg);
  const data::DataSplit split = data::generate_synthetic_mnist(12, 1, 13);
  const nn::Tensor feats = engine->compute_batch(split.train.images);
  EXPECT_EQ(feats.shape(), (std::vector<int>{12, 3, 28, 28}));
  // Batch result must equal the single-image path.
  std::vector<float> single(3 * 784);
  engine->compute(split.train.images.data(), single.data());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(feats[i], single[i]);
  }
}

TEST(FirstLayerEngine, FactoryProducesAllDesigns) {
  const auto qw = sample_qweights(2, 4, 9);
  FirstLayerConfig cfg;
  cfg.bits = 4;
  EXPECT_EQ(make_first_layer_engine(FirstLayerDesign::kBinaryQuantized, qw, cfg)
                ->name(),
            "binary-quantized");
  EXPECT_EQ(
      make_first_layer_engine(FirstLayerDesign::kScProposed, qw, cfg)->name(),
      "sc-proposed");
  EXPECT_EQ(make_first_layer_engine(FirstLayerDesign::kScConventional, qw, cfg)
                ->name(),
            "sc-conventional");
}

TEST(FirstLayerEngine, BitsMismatchRejected) {
  const auto qw = sample_qweights(2, 8, 10);
  FirstLayerConfig cfg;
  cfg.bits = 4;  // weights quantized at 8
  EXPECT_THROW(BinaryFirstLayer(qw, cfg), std::invalid_argument);
  EXPECT_THROW(StochasticFirstLayer(StochasticFirstLayer::Style::kProposed, qw,
                                    cfg),
               std::invalid_argument);
}

TEST(FirstLayerEngine, DesignNames) {
  EXPECT_EQ(to_string(FirstLayerDesign::kBinaryQuantized), "Binary");
  EXPECT_EQ(to_string(FirstLayerDesign::kScProposed), "This Work");
  EXPECT_EQ(to_string(FirstLayerDesign::kScConventional), "Old SC");
}

// --- SIMD fast-path engines -------------------------------------------------
// The optimization referee: FastStochasticFirstLayer must be bit-identical
// to StochasticFirstLayer for both styles at every precision — the fast
// engines are an optimization, never an approximation.

class FastBitIdentity : public ::testing::TestWithParam<unsigned> {};

TEST_P(FastBitIdentity, ProposedFastMatchesReferenceExactly) {
  const unsigned bits = GetParam();
  const auto qw = sample_qweights(3, bits, 100 + bits);
  FirstLayerConfig cfg;
  cfg.bits = bits;
  StochasticFirstLayer ref(ScStyle::kProposed, qw, cfg);
  FastStochasticFirstLayer fast(ScStyle::kProposed, qw, cfg);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const nn::Tensor img = sample_image(70 + 3 * bits + i);
    EXPECT_EQ(run_engine(ref, img), run_engine(fast, img))
        << "bits=" << bits << " image=" << i;
  }
}

TEST_P(FastBitIdentity, ConventionalFastMatchesReferenceExactly) {
  const unsigned bits = GetParam();
  const auto qw = sample_qweights(3, bits, 200 + bits);
  FirstLayerConfig cfg;
  cfg.bits = bits;
  StochasticFirstLayer ref(ScStyle::kConventional, qw, cfg);
  FastStochasticFirstLayer fast(ScStyle::kConventional, qw, cfg);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const nn::Tensor img = sample_image(90 + 3 * bits + i);
    EXPECT_EQ(run_engine(ref, img), run_engine(fast, img))
        << "bits=" << bits << " image=" << i;
  }
}

TEST_P(FastBitIdentity, FastMatchesReferenceWithSoftThreshold) {
  const unsigned bits = GetParam();
  const auto qw = sample_qweights(2, bits, 300 + bits);
  FirstLayerConfig cfg;
  cfg.bits = bits;
  cfg.soft_threshold = 1.0;
  StochasticFirstLayer ref(ScStyle::kProposed, qw, cfg);
  FastStochasticFirstLayer fast(ScStyle::kProposed, qw, cfg);
  const nn::Tensor img = sample_image(55);
  EXPECT_EQ(run_engine(ref, img), run_engine(fast, img)) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Bits, FastBitIdentity,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(FastFirstLayer, BatchMatchesSingleImagePath) {
  const auto qw = sample_qweights(3, 4, 14);
  FirstLayerConfig cfg;
  cfg.bits = 4;
  FastStochasticFirstLayer fast(ScStyle::kProposed, qw, cfg);
  const data::DataSplit split = data::generate_synthetic_mnist(8, 1, 17);
  const nn::Tensor feats = fast.compute_batch(split.train.images);
  EXPECT_EQ(feats.shape(), (std::vector<int>{8, 3, 28, 28}));
  std::vector<float> single(3 * 784);
  fast.compute(split.train.images.data(), single.data());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(feats[i], single[i]);
  }
}

TEST(FastFirstLayer, PackedLayoutSelectedForShortStreams) {
  const auto qw4 = sample_qweights(2, 4, 15);
  const auto qw8 = sample_qweights(2, 8, 15);
  FirstLayerConfig cfg4, cfg8;
  cfg4.bits = 4;
  cfg8.bits = 8;
  FastStochasticFirstLayer p4(ScStyle::kProposed, qw4, cfg4);
  FastStochasticFirstLayer p8(ScStyle::kProposed, qw8, cfg8);
  EXPECT_EQ(p4.positions_per_word(), 4u);  // 64 / 2^4
  EXPECT_EQ(p8.positions_per_word(), 1u);  // column-batched
  EXPECT_EQ(p4.stream_length(), 16u);
  EXPECT_EQ(p8.stream_length(), 256u);
}

TEST(FastFirstLayer, RegisteredInBackendRegistry) {
  auto& reg = runtime::BackendRegistry::instance();
  ASSERT_TRUE(reg.contains("sc-proposed-fast"));
  ASSERT_TRUE(reg.contains("sc-conventional-fast"));
  const auto qw = sample_qweights(2, 4, 16);
  FirstLayerConfig cfg;
  cfg.bits = 4;
  EXPECT_EQ(reg.create("sc-proposed-fast", qw, cfg)->name(),
            "sc-proposed-fast");
  EXPECT_EQ(reg.create("sc-conventional-fast", qw, cfg)->name(),
            "sc-conventional-fast");
  // And the registry-created fast engine matches the registry-created
  // reference engine bit for bit.
  const nn::Tensor img = sample_image(23);
  EXPECT_EQ(run_engine(*reg.create("sc-proposed", qw, cfg), img),
            run_engine(*reg.create("sc-proposed-fast", qw, cfg), img));
}

class ScPrecisionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScPrecisionSweep, AllPrecisionsProduceTernaryOutput) {
  const unsigned bits = GetParam();
  const auto qw = sample_qweights(2, bits, 60 + bits);
  FirstLayerConfig cfg;
  cfg.bits = bits;
  StochasticFirstLayer sc(StochasticFirstLayer::Style::kProposed, qw, cfg);
  EXPECT_EQ(sc.stream_length(), std::size_t{1} << bits);
  const auto out = run_engine(sc, sample_image(61));
  for (float v : out) {
    EXPECT_TRUE(v == -1.0f || v == 0.0f || v == 1.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, ScPrecisionSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace scbnn::hybrid
