// WorkStealingExecutor tests: lifecycle and exception safety mirroring the
// legacy ThreadPool contract, the concurrency contract (concurrent
// parallel_for callers, exception mid-steal, shutdown racing stealers),
// steal-on/off bit identity across the fast SC backends, the
// zero-allocation guarantee of the parallel_for hot path, per-worker stat
// aggregation, and the pure topology/pin-plan layer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic_mnist.h"
#include "hybrid/first_layer.h"
#include "nn/init.h"
#include "nn/quantize.h"
#include "runtime/inference_engine.h"
#include "runtime/thread_pool.h"
#include "runtime/topology.h"
#include "runtime/work_stealing_executor.h"

// ----------------------------------------------------- allocation counting
//
// Global operator new/delete replacements let the zero-allocation
// regression below observe every heap allocation in the binary. Counting
// is always on (it is one relaxed increment); tests read the counter
// delta around the window they care about.
//
// GCC pairs its builtin model of operator new with the free() it sees in
// the replacement delete and flags every use site, even though this
// malloc-based new/delete pair is consistent — suppress the false
// positive for this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace scbnn::runtime {
namespace {

// ----------------------------------------------------- lifecycle contract

TEST(WorkStealingExecutor, RunsSubmittedTasks) {
  WorkStealingExecutor pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(WorkStealingExecutor, TaskExceptionSurfacesInFutureAndPoolSurvives) {
  WorkStealingExecutor pool(2);
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 8);
}

TEST(WorkStealingExecutor, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    WorkStealingExecutor pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++counter;
      });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 32);
}

TEST(WorkStealingExecutor, ParallelForCoversEveryJobOnceWithValidSlots) {
  WorkStealingExecutor pool(4);
  constexpr int kJobs = 123;
  std::vector<std::atomic<int>> hits(kJobs);
  pool.parallel_for(kJobs, [&](int job, unsigned worker) {
    ASSERT_LT(worker, pool.size());
    hits[static_cast<std::size_t>(job)]++;
  });
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "job " << i;
  }
}

TEST(WorkStealingExecutor, ParallelForZeroJobsIsANoOp) {
  WorkStealingExecutor pool(2);
  pool.parallel_for(0, [](int, unsigned) { FAIL() << "must not run"; });
}

TEST(WorkStealingExecutor, SubmitAndParallelForAfterShutdownThrowClearly) {
  WorkStealingExecutor pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; }).get();
  pool.shutdown();
  try {
    (void)pool.submit([&counter] { ++counter; });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shut down"), std::string::npos);
  }
  EXPECT_THROW(pool.parallel_for(4, [](int, unsigned) {}),
               std::runtime_error);
  EXPECT_EQ(counter.load(), 1);
  pool.shutdown();  // idempotent; the destructor calls it again
}

TEST(WorkStealingExecutor, SingleWorkerRunsSubmitInlineWithResolvedFuture) {
  WorkStealingExecutor pool(1);
  std::thread::id ran_on;
  auto f = pool.submit([&ran_on] { ran_on = std::this_thread::get_id(); });
  // The documented size()==1 fast path: no queue round-trip — the task
  // already ran, on the calling thread, and the future is resolved.
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(ran_on, std::this_thread::get_id());

  // Exceptions still land in the future, not on the submit call.
  auto bad = pool.submit([] { throw std::runtime_error("inline boom"); });
  EXPECT_EQ(bad.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_THROW(bad.get(), std::runtime_error);

  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(WorkStealingExecutor, NestedParallelForRunsInlineUnderWorkerSlot) {
  WorkStealingExecutor pool(3);
  std::atomic<int> jobs_run{0};
  std::atomic<int> distinct_slots{0};
  pool.submit([&] {
        std::atomic<unsigned> first_slot{~0u};
        pool.parallel_for(10, [&](int, unsigned worker) {
          unsigned expect = ~0u;
          if (!first_slot.compare_exchange_strong(expect, worker) &&
              expect != worker) {
            distinct_slots = 1;  // inline contract broken
          }
          ++jobs_run;
        });
      })
      .get();
  EXPECT_EQ(jobs_run.load(), 10);
  EXPECT_EQ(distinct_slots.load(), 0) << "nested fan-out left its worker";
}

TEST(WorkStealingExecutor, SubmitFromWorkerTaskRuns) {
  WorkStealingExecutor pool(2);
  std::atomic<int> inner_ran{0};
  pool.submit([&] { (void)pool.submit([&inner_ran] { ++inner_ran; }); })
      .get();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (inner_ran.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(inner_ran.load(), 1);
}

// --------------------------------------------------- concurrency contract

TEST(WorkStealingExecutor, ConcurrentParallelForCallersEachSeeFullCoverage) {
  // The multi-model serving shape: several external threads fan out on one
  // shared executor at once. Every caller must observe every one of its
  // own jobs exactly once, every time.
  WorkStealingExecutor pool(3);
  constexpr int kCallers = 4;
  constexpr int kReps = 25;
  constexpr int kJobs = 57;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &failures] {
      std::vector<int> hits(kJobs);
      for (int rep = 0; rep < kReps; ++rep) {
        std::fill(hits.begin(), hits.end(), 0);
        pool.parallel_for(kJobs,
                          [&hits](int job, unsigned) { ++hits[job]; });
        for (int j = 0; j < kJobs; ++j) {
          if (hits[j] != 1) ++failures;
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(WorkStealingExecutor, ExceptionMidStealPropagatesAndPoolStaysUsable) {
  // Many jobs across many workers guarantee the throwing job is reachable
  // by a thief; whoever runs it, exactly that exception must surface at
  // the caller and the executor must keep serving afterwards.
  WorkStealingExecutor pool(4);
  for (int rep = 0; rep < 5; ++rep) {
    try {
      pool.parallel_for(400, [](int job, unsigned) {
        if (job == 217) throw std::invalid_argument("job 217");
      });
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("217"), std::string::npos);
    }
  }
  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](int, unsigned) { ++counter; });
  EXPECT_EQ(counter.load(), 100);
}

TEST(WorkStealingExecutor, FailingCallerDoesNotPoisonConcurrentCaller) {
  WorkStealingExecutor pool(3);
  std::atomic<int> clean_failures{0};
  std::thread chaos([&pool] {
    for (int rep = 0; rep < 20; ++rep) {
      try {
        pool.parallel_for(120, [](int job, unsigned) {
          if (job % 17 == 3) throw std::runtime_error("chaos");
        });
      } catch (const std::runtime_error&) {
      }
    }
  });
  std::thread clean([&pool, &clean_failures] {
    for (int rep = 0; rep < 20; ++rep) {
      try {
        std::atomic<int> n{0};
        pool.parallel_for(90, [&n](int, unsigned) { ++n; });
        if (n.load() != 90) ++clean_failures;
      } catch (...) {
        ++clean_failures;  // a neighbor's exception leaked into this op
      }
    }
  });
  chaos.join();
  clean.join();
  EXPECT_EQ(clean_failures.load(), 0);
}

TEST(WorkStealingExecutor, ShutdownRacingProducersNeverLosesAdmittedWork) {
  // Producers hammer submit()/parallel_for() while the main thread shuts
  // the executor down. Every call must either be refused with
  // runtime_error or fully honored — an admitted future always resolves.
  WorkStealingExecutor pool(4);
  std::atomic<long> executed{0};
  std::atomic<long> admitted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      std::vector<std::future<void>> futures;
      try {
        for (;;) {
          futures.push_back(pool.submit([&executed] { ++executed; }));
          ++admitted;
        }
      } catch (const std::runtime_error&) {
      }
      for (auto& f : futures) f.get();  // must not hang or rethrow
    });
  }
  producers.emplace_back([&] {
    try {
      for (;;) {
        std::atomic<int> n{0};
        pool.parallel_for(64, [&n](int, unsigned) { ++n; });
        if (n.load() != 64) std::abort();  // admitted fan-out half-run
      }
    } catch (const std::runtime_error&) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.shutdown();
  for (auto& t : producers) t.join();
  EXPECT_EQ(executed.load(), admitted.load());
}

// ------------------------------------------------------- steal on/off knob

TEST(WorkStealingExecutor, StealEnvToggleIsRespected) {
  ASSERT_EQ(setenv("SCBNN_STEAL", "off", 1), 0);
  EXPECT_FALSE(WorkStealingExecutor(2).stealing_enabled());
  ASSERT_EQ(setenv("SCBNN_STEAL", "0", 1), 0);
  EXPECT_FALSE(WorkStealingExecutor(2).stealing_enabled());
  ASSERT_EQ(setenv("SCBNN_STEAL", "on", 1), 0);
  EXPECT_TRUE(WorkStealingExecutor(2).stealing_enabled());
  ASSERT_EQ(unsetenv("SCBNN_STEAL"), 0);
  EXPECT_TRUE(WorkStealingExecutor(2).stealing_enabled());
  // An explicit Options::steal wins over the environment.
  ASSERT_EQ(setenv("SCBNN_STEAL", "off", 1), 0);
  WorkStealingExecutor::Options opt;
  opt.threads = 2;
  opt.steal = true;
  EXPECT_TRUE(WorkStealingExecutor(opt).stealing_enabled());
  ASSERT_EQ(unsetenv("SCBNN_STEAL"), 0);
}

nn::QuantizedConvWeights sample_qweights(int kernels, unsigned bits,
                                         std::uint64_t seed) {
  nn::Rng rng(seed);
  nn::Tensor w({kernels, 1, 5, 5});
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.normal(0.0f, 0.3f);
  return nn::quantize_conv_weights(w, bits);
}

TEST(WorkStealingExecutor, StealOnOffBitIdenticalAcrossFastBackends) {
  // The determinism acceptance gate: predictions of the fast SC backends
  // must not depend on whether chunks were stolen — the job->output
  // mapping is static, stealing only moves *where* a chunk runs.
  const auto qw = sample_qweights(4, 4, 21);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  cfg.seed = 21;
  const data::DataSplit split = data::generate_synthetic_mnist(23, 1, 17);

  for (const char* backend : {"sc-proposed-fast", "sc-conventional-fast"}) {
    auto features_with = [&](bool steal, unsigned threads) {
      WorkStealingExecutor::Options opt;
      opt.threads = threads;
      opt.steal = steal;
      RuntimeConfig rc;
      rc.threads = threads;
      rc.chunk_images = 3;  // 23 images -> uneven chunks
      rc.executor = std::make_shared<WorkStealingExecutor>(opt);
      InferenceEngine engine(backend, qw, cfg, rc);
      return engine.features(split.train.images);
    };
    const nn::Tensor reference = features_with(false, 1);
    for (bool steal : {false, true}) {
      const nn::Tensor got = features_with(steal, 4);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        ASSERT_EQ(got[i], reference[i])
            << backend << " steal=" << steal << " diverged at " << i;
      }
    }
  }
}

// ------------------------------------------------------- zero allocations

TEST(WorkStealingExecutor, ParallelForAllocatesNothingOnSingleWorker) {
  // The single-frame serving path: a 1-worker executor must fan out with
  // zero heap traffic per call (the inline path touches no queue, no
  // TaskNode, no std::function).
  WorkStealingExecutor pool(1);
  long sum = 0;
  pool.parallel_for(8, [&](int job, unsigned) { sum += job; });  // warm up
  const long long before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 100; ++rep) {
    pool.parallel_for(64, [&](int job, unsigned) { sum += job; });
  }
  const long long delta =
      g_heap_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0) << "inline parallel_for allocated";
  EXPECT_GT(sum, 0);
}

TEST(WorkStealingExecutor, ParallelForAllocatesNothingOnWarmMultiWorker) {
  // The multi-worker dispatch reuses pooled ForOp frames: once warm, a
  // fan-out must allocate nothing — caller side or worker side.
  WorkStealingExecutor pool(2);
  std::atomic<long> sum{0};
  for (int rep = 0; rep < 4; ++rep) {
    pool.parallel_for(32, [&](int job, unsigned) { sum += job; });
  }
  const long long before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 100; ++rep) {
    pool.parallel_for(32, [&](int job, unsigned) { sum += job; });
  }
  const long long delta =
      g_heap_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(delta, 0) << "warm multi-worker parallel_for allocated";
}

// ------------------------------------------------------------------ stats

TEST(WorkStealingExecutor, StatsCountersAreCoherent) {
  WorkStealingExecutor pool(4);
  constexpr int kTasks = 24;
  constexpr int kFors = 12;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  for (auto& f : futures) f.get();
  std::atomic<int> n{0};
  for (int rep = 0; rep < kFors; ++rep) {
    pool.parallel_for(40, [&n](int, unsigned) { ++n; });
  }

  const ExecutorStats s = pool.stats();
  EXPECT_EQ(s.workers, 4u);
  EXPECT_EQ(s.tasks_run, static_cast<std::uint64_t>(kTasks));
  EXPECT_GE(s.parallel_fors, static_cast<std::uint64_t>(kFors));
  EXPECT_GT(s.chunks_run, 0u);
  EXPECT_LE(s.steals, s.steal_attempts);
  EXPECT_GE(s.steal_success_rate(), 0.0);
  EXPECT_LE(s.steal_success_rate(), 1.0);
  EXPECT_GE(s.queue_high_water, 1u);  // kTasks queued against 4 workers
}

TEST(WorkStealingExecutor, LegacyThreadPoolReportsWorkerCountOnly) {
  ThreadPool pool(2);
  pool.submit([] {}).get();
  const ExecutorStats s = pool.stats();
  EXPECT_EQ(s.workers, 2u);
  EXPECT_EQ(s.tasks_run, 0u);  // the legacy pool predates the counters
  EXPECT_EQ(s.steal_attempts, 0u);
}

TEST(WorkStealingExecutor, ServableExposesExecutorStats) {
  const auto qw = sample_qweights(3, 4, 9);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  const data::DataSplit split = data::generate_synthetic_mnist(12, 1, 13);

  RuntimeConfig rc;
  rc.threads = 2;
  rc.executor = make_shared_executor(2);
  InferenceEngine engine("sc-proposed", qw, cfg, rc);
  (void)engine.features(split.train.images);
  const ExecutorStats s = engine.executor_stats();
  EXPECT_EQ(s.workers, 2u);
  EXPECT_GT(s.parallel_fors, 0u);
  EXPECT_GT(s.chunks_run, 0u);
}

TEST(WorkStealingExecutor, MakeSharedExecutorIsWorkStealing) {
  const auto executor = make_shared_executor(2);
  ASSERT_NE(executor, nullptr);
  EXPECT_EQ(executor->size(), 2u);
  EXPECT_NE(dynamic_cast<WorkStealingExecutor*>(executor.get()), nullptr);
  EXPECT_EQ(make_shared_executor()->size(), Executor::resolve_threads(0));
}

// --------------------------------------------------------------- topology

TEST(Topology, ParseCpuListHandlesRangesAndGarbage) {
  EXPECT_EQ(parse_cpu_list("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list("5"), (std::vector<int>{5}));
  EXPECT_EQ(parse_cpu_list(""), (std::vector<int>{}));
  // Malformed chunks are skipped, valid ones survive.
  EXPECT_EQ(parse_cpu_list("x,2-1,4,-3"), (std::vector<int>{4}));
}

TEST(Topology, PinModeStringsRoundTripAndReject) {
  for (PinMode mode : {PinMode::kOff, PinMode::kAuto, PinMode::kCompact,
                       PinMode::kScatter}) {
    EXPECT_EQ(pin_mode_from_string(to_string(mode)), mode);
  }
  EXPECT_THROW((void)pin_mode_from_string("numa"), std::invalid_argument);
  EXPECT_THROW((void)pin_mode_from_string(""), std::invalid_argument);
}

TEST(Topology, PinModeFromEnvWarnsAndDefaultsOff) {
  ASSERT_EQ(setenv("SCBNN_PIN", "scatter", 1), 0);
  EXPECT_EQ(pin_mode_from_env(), PinMode::kScatter);
  ASSERT_EQ(setenv("SCBNN_PIN", "not-a-mode", 1), 0);
  EXPECT_EQ(pin_mode_from_env(), PinMode::kOff);  // warn, keep default
  ASSERT_EQ(unsetenv("SCBNN_PIN"), 0);
  EXPECT_EQ(pin_mode_from_env(), PinMode::kOff);
}

/// 2 packages x 2 physical cores x 2 SMT threads. Kernel cpu ids are laid
/// out the common x86 way: primaries 0..3 first, SMT siblings 4..7.
CpuTopology dual_socket_smt() {
  CpuTopology topo;
  topo.cpus = {
      {0, 0, 0}, {1, 1, 0}, {2, 0, 1}, {3, 1, 1},  // one thread per core
      {4, 0, 0}, {5, 1, 0}, {6, 0, 1}, {7, 1, 1},  // their SMT siblings
  };
  return topo;
}

TEST(Topology, SyntheticTopologyCounts) {
  const CpuTopology topo = dual_socket_smt();
  EXPECT_EQ(topo.physical_cores(), 4u);
  EXPECT_EQ(topo.packages(), 2u);
}

TEST(Topology, CompactPlanFillsCoresBeforeSiblings) {
  const CpuTopology topo = dual_socket_smt();
  // Package 0's cores first, then package 1's — siblings only after every
  // physical core already has a worker.
  EXPECT_EQ(pin_plan(topo, 4, PinMode::kCompact),
            (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(pin_plan(topo, 6, PinMode::kCompact),
            (std::vector<int>{0, 1, 2, 3, 4, 5}));
  // More workers than cpus: the plan wraps so every worker has a target.
  EXPECT_EQ(pin_plan(topo, 10, PinMode::kCompact),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 0, 1}));
}

TEST(Topology, ScatterPlanRoundRobinsPackages) {
  const CpuTopology topo = dual_socket_smt();
  // Alternate packages: worker 0 -> package 0, worker 1 -> package 1, ...
  EXPECT_EQ(pin_plan(topo, 4, PinMode::kScatter),
            (std::vector<int>{0, 2, 1, 3}));
  EXPECT_EQ(pin_plan(topo, 2, PinMode::kScatter), (std::vector<int>{0, 2}));
}

TEST(Topology, AutoPlanDeclinesWhenWorkersExceedPhysicalCores) {
  const CpuTopology topo = dual_socket_smt();
  EXPECT_EQ(pin_plan(topo, 4, PinMode::kAuto),
            (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(pin_plan(topo, 5, PinMode::kAuto).empty());
  EXPECT_TRUE(pin_plan(topo, 4, PinMode::kOff).empty());
  EXPECT_TRUE(pin_plan(CpuTopology{}, 4, PinMode::kCompact).empty());
}

TEST(Topology, ExecutorWithPinningStillServes) {
  // On any machine the compact plan over the real topology is a valid
  // affinity target per worker; pinning failures are best-effort no-ops,
  // so the executor must work regardless.
  WorkStealingExecutor::Options opt;
  opt.threads = 2;
  opt.pin = PinMode::kCompact;
  WorkStealingExecutor pool(opt);
  EXPECT_EQ(pool.pin_mode(), PinMode::kCompact);
  EXPECT_EQ(pool.pin_targets().size(), 2u);
  for (int cpu : pool.pin_targets()) EXPECT_GE(cpu, 0);
  std::atomic<int> n{0};
  pool.parallel_for(50, [&n](int, unsigned) { ++n; });
  EXPECT_EQ(n.load(), 50);

  WorkStealingExecutor unpinned(2);
  EXPECT_EQ(unpinned.pin_mode(), PinMode::kOff);
  EXPECT_TRUE(unpinned.pin_targets().empty());
}

}  // namespace
}  // namespace scbnn::runtime
