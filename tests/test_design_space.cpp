#include "hw/design_space.h"

#include <gtest/gtest.h>

#include "hw/report.h"

namespace scbnn::hw {
namespace {

TEST(DesignSpace, PaperSweepCoversAllPrecisions) {
  const auto points = sweep_design_space_paper();
  ASSERT_EQ(points.size(), 7u);
  EXPECT_EQ(points.front().bits, 8u);
  EXPECT_EQ(points.back().bits, 2u);
  for (const auto& p : points) {
    EXPECT_GT(p.sc_energy_nj, 0.0);
    EXPECT_GT(p.energy_ratio, 0.0);
  }
}

TEST(DesignSpace, EnergyRatioGrowsTowardLowPrecision) {
  const auto points = sweep_design_space_paper();
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].energy_ratio, points[i - 1].energy_ratio)
        << "bits " << points[i].bits;
  }
}

TEST(DesignSpace, MismatchedSpansRejected) {
  const unsigned bits[] = {8, 4};
  const double a[] = {1.0};
  const double b[] = {1.0, 2.0};
  EXPECT_THROW((void)sweep_design_space(bits, a, b), std::invalid_argument);
}

TEST(DesignSpace, ParetoFrontierIsMonotone) {
  const auto points = sweep_design_space_paper();
  const auto frontier = pareto_frontier(points);
  ASSERT_FALSE(frontier.empty());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].sc_energy_nj, frontier[i - 1].sc_energy_nj);
    EXPECT_LT(frontier[i].miscl_this_work_pct,
              frontier[i - 1].miscl_this_work_pct);
  }
}

TEST(DesignSpace, ParetoExcludesDominatedPoints) {
  // In the paper's numbers, 5-bit (1.12%) is dominated by 4-bit (1.04% at
  // lower energy) — it must not appear on the frontier.
  const auto frontier = pareto_frontier(sweep_design_space_paper());
  for (const auto& p : frontier) {
    EXPECT_NE(p.bits, 5u);
  }
}

TEST(DesignSpace, SelectionHonorsAccuracyBudget) {
  const auto points = sweep_design_space_paper();
  // Generous budget: the 2-bit point (43.82%) is the cheapest qualifying.
  const auto loose = select_operating_point(points, 50.0);
  ASSERT_TRUE(loose.has_value());
  EXPECT_EQ(loose->bits, 2u);
  // ~1% budget: the paper's sweet spot at 3-4 bits wins on energy.
  const auto tight = select_operating_point(points, 1.1);
  ASSERT_TRUE(tight.has_value());
  EXPECT_EQ(tight->bits, 4u);
  // Impossible budget.
  EXPECT_FALSE(select_operating_point(points, 0.1).has_value());
}

TEST(DesignSpace, AccuracyPenaltyComputed) {
  OperatingPoint p;
  p.miscl_this_work_pct = 1.04;
  p.miscl_binary_pct = 0.79;
  EXPECT_NEAR(p.accuracy_penalty_pct(), 0.25, 1e-12);
}

TEST(DesignSpace, HeadlineOperatingPointMatchesAbstract) {
  // The abstract's claim: ~9.8x energy efficiency at accuracy within 0.05%
  // of binary — that is the 8-bit point for accuracy (0.94 vs 0.89) and the
  // 4-bit point for energy.
  const auto points = sweep_design_space_paper();
  const auto& p8 = points[0];
  EXPECT_NEAR(p8.accuracy_penalty_pct(), 0.05, 1e-9);
  const auto& p4 = points[4];
  EXPECT_EQ(p4.bits, 4u);
  EXPECT_GT(p4.energy_ratio, 8.0);
  EXPECT_LT(p4.energy_ratio, 13.0);
}

}  // namespace
}  // namespace scbnn::hw
