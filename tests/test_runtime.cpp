// Serving-runtime tests: thread-pool lifecycle and exception safety, the
// backend registry, and the determinism contract of the batched inference
// engine (same seed => bit-identical features at any thread count).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/synthetic_mnist.h"
#include "hybrid/binary_first_layer.h"
#include "hybrid/first_layer.h"
#include "hybrid/hybrid_network.h"
#include "nn/init.h"
#include "nn/quantize.h"
#include "runtime/backend_registry.h"
#include "runtime/inference_engine.h"
#include "runtime/thread_pool.h"

namespace scbnn::runtime {
namespace {

nn::QuantizedConvWeights sample_qweights(int kernels, unsigned bits,
                                         std::uint64_t seed) {
  nn::Rng rng(seed);
  nn::Tensor w({kernels, 1, 5, 5});
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.normal(0.0f, 0.3f);
  return nn::quantize_conv_weights(w, bits);
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, TaskExceptionSurfacesInFutureAndPoolSurvives) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++counter;
      });
    }
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ParallelForCoversEveryJobOnceWithValidSlots) {
  ThreadPool pool(4);
  constexpr int kJobs = 123;
  std::vector<std::atomic<int>> hits(kJobs);
  std::vector<std::atomic<int>> slot_seen(kJobs);
  pool.parallel_for(kJobs, [&](int job, unsigned worker) {
    ASSERT_LT(worker, pool.size());  // jobs run on pool workers only
    hits[static_cast<std::size_t>(job)]++;
    slot_seen[static_cast<std::size_t>(job)] = static_cast<int>(worker);
  });
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "job " << i;
  }
}

TEST(ThreadPool, ParallelForPropagatesExceptionAndStaysUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(50,
                                 [](int job, unsigned) {
                                   if (job == 7) {
                                     throw std::invalid_argument("job 7");
                                   }
                                 }),
               std::invalid_argument);
  // Pool is reusable after a failed loop.
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](int, unsigned) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ParallelForZeroJobsIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](int, unsigned) { FAIL() << "must not run"; });
}

TEST(ThreadPool, SubmitAfterShutdownThrowsClearly) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto before = pool.submit([&counter] { ++counter; });
  before.get();
  pool.shutdown();
  // Work submitted now would never run — it must be refused loudly.
  try {
    (void)pool.submit([&counter] { ++counter; });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shut down"), std::string::npos);
  }
  EXPECT_THROW(pool.parallel_for(4, [](int, unsigned) {}),
               std::runtime_error);
  EXPECT_EQ(counter.load(), 1);
  pool.shutdown();  // idempotent; the destructor calls it again
}

TEST(ThreadPool, ResolveThreadsMatchesConstructedPoolSize) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  EXPECT_EQ(ThreadPool::resolve_threads(ThreadPool::kMaxThreads + 7),
            ThreadPool::kMaxThreads);
  for (unsigned requested : {0u, 1u, 4u}) {
    ThreadPool pool(requested);
    EXPECT_EQ(pool.size(), ThreadPool::resolve_threads(requested));
  }
}

// -------------------------------------------------------- BackendRegistry

TEST(BackendRegistry, BuiltinsRegistered) {
  auto& reg = BackendRegistry::instance();
  EXPECT_TRUE(reg.contains("binary-quantized"));
  EXPECT_TRUE(reg.contains("sc-proposed"));
  EXPECT_TRUE(reg.contains("sc-conventional"));
  EXPECT_FALSE(reg.contains("tpu-offload"));
}

TEST(BackendRegistry, CreateBuiltinsMatchesEngineNames) {
  const auto qw = sample_qweights(2, 4, 1);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  auto& reg = BackendRegistry::instance();
  for (const char* name :
       {"binary-quantized", "sc-proposed", "sc-conventional"}) {
    const auto engine = reg.create(name, qw, cfg);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), name);
    EXPECT_EQ(engine->bits(), 4u);
  }
}

TEST(BackendRegistry, UnknownBackendThrowsListingKnownNames) {
  const auto qw = sample_qweights(2, 4, 2);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  try {
    (void)BackendRegistry::instance().create("no-such-backend", qw, cfg);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-backend"), std::string::npos);
    EXPECT_NE(what.find("sc-proposed"), std::string::npos);
  }
}

TEST(BackendRegistry, CustomBackendPlugsInWithoutTouchingFactories) {
  auto& reg = BackendRegistry::instance();
  const std::string name = "test-binary-alias";
  if (!reg.contains(name)) {
    reg.register_backend(name, [](const nn::QuantizedConvWeights& w,
                                  const hybrid::FirstLayerConfig& c) {
      return std::make_unique<hybrid::BinaryFirstLayer>(w, c);
    });
  }
  EXPECT_TRUE(reg.contains(name));
  const auto qw = sample_qweights(2, 4, 3);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  const auto engine = reg.create(name, qw, cfg);
  EXPECT_EQ(engine->kernels(), 2);
  // Duplicate registration is rejected.
  EXPECT_THROW(reg.register_backend(
                   name, [](const nn::QuantizedConvWeights& w,
                            const hybrid::FirstLayerConfig& c) {
                     return std::make_unique<hybrid::BinaryFirstLayer>(w, c);
                   }),
               std::invalid_argument);
}

TEST(BackendRegistry, InvalidRegistrationsRejected) {
  auto& reg = BackendRegistry::instance();
  EXPECT_THROW(reg.register_backend("", [](const nn::QuantizedConvWeights& w,
                                           const hybrid::FirstLayerConfig& c) {
                 return std::make_unique<hybrid::BinaryFirstLayer>(w, c);
               }),
               std::invalid_argument);
  EXPECT_THROW(reg.register_backend("null-factory", BackendFactory{}),
               std::invalid_argument);
}

// -------------------------------------------------------- InferenceEngine

TEST(InferenceEngine, RejectsNullEngineAndBadConfig) {
  EXPECT_THROW(InferenceEngine(nullptr), std::invalid_argument);
  const auto qw = sample_qweights(2, 4, 4);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  RuntimeConfig rc;
  rc.chunk_images = 0;
  EXPECT_THROW(InferenceEngine("sc-proposed", qw, cfg, rc),
               std::invalid_argument);
  rc.chunk_images = 8;
  rc.threads = ThreadPool::kMaxThreads + 1;  // absurd, not silently clamped
  EXPECT_THROW(InferenceEngine("sc-proposed", qw, cfg, rc),
               std::invalid_argument);
}

TEST(RuntimeConfig, ValidateAcceptsDefaultsAndRejectsNonsense) {
  EXPECT_NO_THROW(RuntimeConfig{}.validate());
  RuntimeConfig rc;
  rc.threads = ThreadPool::kMaxThreads;  // at the cap is still fine
  EXPECT_NO_THROW(rc.validate());
  rc.threads = ThreadPool::kMaxThreads + 1;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  rc.threads = 0;
  rc.chunk_images = -3;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  // Exact edge cases: zero chunks is as invalid as negative, and the error
  // message names the offending field and value.
  rc.chunk_images = 0;
  try {
    (void)rc.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("chunk_images"), std::string::npos);
  }
  rc.chunk_images = 1;  // minimum legal chunk
  EXPECT_NO_THROW(rc.validate());
}

TEST(InferenceEngine, FeaturesMatchSerialReference) {
  const auto qw = sample_qweights(3, 4, 5);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  const data::DataSplit split = data::generate_synthetic_mnist(17, 1, 23);

  const auto serial =
      hybrid::make_first_layer_engine(hybrid::FirstLayerDesign::kScProposed,
                                      qw, cfg);
  const nn::Tensor expect = serial->compute_batch(split.train.images);

  RuntimeConfig rc;
  rc.threads = 3;
  rc.chunk_images = 4;  // 17 images -> 5 uneven chunks
  InferenceEngine engine("sc-proposed", qw, cfg, rc);
  const nn::Tensor got = engine.features(split.train.images);

  ASSERT_EQ(got.shape(), expect.shape());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(got[i], expect[i]) << "feature " << i;
  }
}

TEST(InferenceEngine, DeterministicAcrossThreadCounts) {
  // The acceptance contract: fixed seed => identical predictions whether
  // the batch is served by 1 thread or many.
  const unsigned kSeed = 11;
  const auto qw = sample_qweights(4, 4, kSeed);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  cfg.seed = kSeed;
  const data::DataSplit split = data::generate_synthetic_mnist(24, 1, kSeed);

  std::vector<nn::Tensor> features;
  for (unsigned threads : {1u, 2u, 5u}) {
    RuntimeConfig rc;
    rc.threads = threads;
    rc.chunk_images = 3;
    InferenceEngine engine("sc-conventional", qw, cfg, rc);
    features.push_back(engine.features(split.train.images));
    EXPECT_EQ(engine.last_stats().threads, threads);
  }
  for (std::size_t v = 1; v < features.size(); ++v) {
    ASSERT_EQ(features[v].size(), features[0].size());
    for (std::size_t i = 0; i < features[0].size(); ++i) {
      ASSERT_EQ(features[v][i], features[0][i])
          << "thread variant " << v << " diverged at " << i;
    }
  }
}

TEST(InferenceEngine, PredictionsIdenticalAt1VsNThreads) {
  const auto qw = sample_qweights(4, 4, 6);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  const data::DataSplit split = data::generate_synthetic_mnist(16, 1, 29);

  hybrid::LeNetConfig lenet{4, 4, 16, 0.0f};
  auto predictions_with = [&](unsigned threads) {
    RuntimeConfig rc;
    rc.threads = threads;
    rc.chunk_images = 2;
    nn::Rng rng(99);  // same seed => same tail weights
    hybrid::HybridNetwork net(
        hybrid::make_first_layer_engine(hybrid::FirstLayerDesign::kScProposed,
                                        qw, cfg),
        hybrid::build_tail(lenet, rng), rc);
    return net.predict(split.train.images);
  };
  EXPECT_EQ(predictions_with(1), predictions_with(4));
}

TEST(InferenceEngine, StatsReportBatchAndEnergy) {
  const auto qw = sample_qweights(4, 4, 7);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  const data::DataSplit split = data::generate_synthetic_mnist(10, 1, 31);

  RuntimeConfig rc;
  rc.threads = 2;
  InferenceEngine engine("sc-proposed", qw, cfg, rc);
  (void)engine.features(split.train.images);
  const BatchStats& stats = engine.last_stats();
  EXPECT_EQ(stats.images, 10);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_GE(stats.latency_ms, 0.0);
  EXPECT_GT(stats.images_per_sec, 0.0);
  // 4-bit proposed SC has a calibrated hardware model -> non-zero energy.
  EXPECT_GT(stats.energy_j, 0.0);
  // ... and an SC backend reports its cycle spend.
  EXPECT_GT(stats.sc_cycles, 0.0);
}

}  // namespace
}  // namespace scbnn::runtime
