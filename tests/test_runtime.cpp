// Serving-runtime tests: thread-pool lifecycle and exception safety, the
// backend registry, the determinism contract of the batched inference
// engine (same seed => bit-identical features at any thread count), and
// the vectorized zero-allocation tail fast path (bit-identity vs the
// Network::forward reference, warm-path allocation count, InferencePlan
// error paths).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <new>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/synthetic_mnist.h"
#include "hybrid/binary_first_layer.h"
#include "hybrid/first_layer.h"
#include "hybrid/hybrid_network.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/inference_plan.h"
#include "nn/maxpool.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/quantize.h"
#include "runtime/backend_registry.h"
#include "runtime/inference_engine.h"
#include "runtime/thread_pool.h"
#include "sc/simd.h"

// ----------------------------------------------------- allocation counting
//
// Global operator new/delete replacements (same scheme as
// test_executor.cpp) let the zero-allocation classify regression observe
// every heap allocation in the binary. Counting is always on; tests read
// the counter delta around the window they care about.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace scbnn::runtime {
namespace {

nn::QuantizedConvWeights sample_qweights(int kernels, unsigned bits,
                                         std::uint64_t seed) {
  nn::Rng rng(seed);
  nn::Tensor w({kernels, 1, 5, 5});
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.normal(0.0f, 0.3f);
  return nn::quantize_conv_weights(w, bits);
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, TaskExceptionSurfacesInFutureAndPoolSurvives) {
  ThreadPool pool(2);
  auto bad = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      (void)pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++counter;
      });
    }
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ParallelForCoversEveryJobOnceWithValidSlots) {
  ThreadPool pool(4);
  constexpr int kJobs = 123;
  std::vector<std::atomic<int>> hits(kJobs);
  std::vector<std::atomic<int>> slot_seen(kJobs);
  pool.parallel_for(kJobs, [&](int job, unsigned worker) {
    ASSERT_LT(worker, pool.size());  // jobs run on pool workers only
    hits[static_cast<std::size_t>(job)]++;
    slot_seen[static_cast<std::size_t>(job)] = static_cast<int>(worker);
  });
  for (int i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "job " << i;
  }
}

TEST(ThreadPool, ParallelForPropagatesExceptionAndStaysUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(50,
                                 [](int job, unsigned) {
                                   if (job == 7) {
                                     throw std::invalid_argument("job 7");
                                   }
                                 }),
               std::invalid_argument);
  // Pool is reusable after a failed loop.
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](int, unsigned) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ParallelForZeroJobsIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](int, unsigned) { FAIL() << "must not run"; });
}

TEST(ThreadPool, SubmitAfterShutdownThrowsClearly) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto before = pool.submit([&counter] { ++counter; });
  before.get();
  pool.shutdown();
  // Work submitted now would never run — it must be refused loudly.
  try {
    (void)pool.submit([&counter] { ++counter; });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shut down"), std::string::npos);
  }
  EXPECT_THROW(pool.parallel_for(4, [](int, unsigned) {}),
               std::runtime_error);
  EXPECT_EQ(counter.load(), 1);
  pool.shutdown();  // idempotent; the destructor calls it again
}

TEST(ThreadPool, ResolveThreadsMatchesConstructedPoolSize) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
  EXPECT_EQ(ThreadPool::resolve_threads(ThreadPool::kMaxThreads + 7),
            ThreadPool::kMaxThreads);
  for (unsigned requested : {0u, 1u, 4u}) {
    ThreadPool pool(requested);
    EXPECT_EQ(pool.size(), ThreadPool::resolve_threads(requested));
  }
}

// -------------------------------------------------------- BackendRegistry

TEST(BackendRegistry, BuiltinsRegistered) {
  auto& reg = BackendRegistry::instance();
  EXPECT_TRUE(reg.contains("binary-quantized"));
  EXPECT_TRUE(reg.contains("sc-proposed"));
  EXPECT_TRUE(reg.contains("sc-conventional"));
  EXPECT_FALSE(reg.contains("tpu-offload"));
}

TEST(BackendRegistry, CreateBuiltinsMatchesEngineNames) {
  const auto qw = sample_qweights(2, 4, 1);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  auto& reg = BackendRegistry::instance();
  for (const char* name :
       {"binary-quantized", "sc-proposed", "sc-conventional"}) {
    const auto engine = reg.create(name, qw, cfg);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), name);
    EXPECT_EQ(engine->bits(), 4u);
  }
}

TEST(BackendRegistry, UnknownBackendThrowsListingKnownNames) {
  const auto qw = sample_qweights(2, 4, 2);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  try {
    (void)BackendRegistry::instance().create("no-such-backend", qw, cfg);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-backend"), std::string::npos);
    EXPECT_NE(what.find("sc-proposed"), std::string::npos);
  }
}

TEST(BackendRegistry, CustomBackendPlugsInWithoutTouchingFactories) {
  auto& reg = BackendRegistry::instance();
  const std::string name = "test-binary-alias";
  if (!reg.contains(name)) {
    reg.register_backend(name, [](const nn::QuantizedConvWeights& w,
                                  const hybrid::FirstLayerConfig& c) {
      return std::make_unique<hybrid::BinaryFirstLayer>(w, c);
    });
  }
  EXPECT_TRUE(reg.contains(name));
  const auto qw = sample_qweights(2, 4, 3);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  const auto engine = reg.create(name, qw, cfg);
  EXPECT_EQ(engine->kernels(), 2);
  // Duplicate registration is rejected.
  EXPECT_THROW(reg.register_backend(
                   name, [](const nn::QuantizedConvWeights& w,
                            const hybrid::FirstLayerConfig& c) {
                     return std::make_unique<hybrid::BinaryFirstLayer>(w, c);
                   }),
               std::invalid_argument);
}

TEST(BackendRegistry, InvalidRegistrationsRejected) {
  auto& reg = BackendRegistry::instance();
  EXPECT_THROW(reg.register_backend("", [](const nn::QuantizedConvWeights& w,
                                           const hybrid::FirstLayerConfig& c) {
                 return std::make_unique<hybrid::BinaryFirstLayer>(w, c);
               }),
               std::invalid_argument);
  EXPECT_THROW(reg.register_backend("null-factory", BackendFactory{}),
               std::invalid_argument);
}

// -------------------------------------------------------- InferenceEngine

TEST(InferenceEngine, RejectsNullEngineAndBadConfig) {
  EXPECT_THROW(InferenceEngine(nullptr), std::invalid_argument);
  const auto qw = sample_qweights(2, 4, 4);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  RuntimeConfig rc;
  rc.chunk_images = 0;
  EXPECT_THROW(InferenceEngine("sc-proposed", qw, cfg, rc),
               std::invalid_argument);
  rc.chunk_images = 8;
  rc.threads = ThreadPool::kMaxThreads + 1;  // absurd, not silently clamped
  EXPECT_THROW(InferenceEngine("sc-proposed", qw, cfg, rc),
               std::invalid_argument);
}

TEST(RuntimeConfig, ValidateAcceptsDefaultsAndRejectsNonsense) {
  EXPECT_NO_THROW(RuntimeConfig{}.validate());
  RuntimeConfig rc;
  rc.threads = ThreadPool::kMaxThreads;  // at the cap is still fine
  EXPECT_NO_THROW(rc.validate());
  rc.threads = ThreadPool::kMaxThreads + 1;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  rc.threads = 0;
  rc.chunk_images = -3;
  EXPECT_THROW(rc.validate(), std::invalid_argument);
  // Exact edge cases: zero chunks is as invalid as negative, and the error
  // message names the offending field and value.
  rc.chunk_images = 0;
  try {
    (void)rc.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("chunk_images"), std::string::npos);
  }
  rc.chunk_images = 1;  // minimum legal chunk
  EXPECT_NO_THROW(rc.validate());
}

TEST(InferenceEngine, FeaturesMatchSerialReference) {
  const auto qw = sample_qweights(3, 4, 5);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  const data::DataSplit split = data::generate_synthetic_mnist(17, 1, 23);

  const auto serial =
      hybrid::make_first_layer_engine(hybrid::FirstLayerDesign::kScProposed,
                                      qw, cfg);
  const nn::Tensor expect = serial->compute_batch(split.train.images);

  RuntimeConfig rc;
  rc.threads = 3;
  rc.chunk_images = 4;  // 17 images -> 5 uneven chunks
  InferenceEngine engine("sc-proposed", qw, cfg, rc);
  const nn::Tensor got = engine.features(split.train.images);

  ASSERT_EQ(got.shape(), expect.shape());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(got[i], expect[i]) << "feature " << i;
  }
}

TEST(InferenceEngine, DeterministicAcrossThreadCounts) {
  // The acceptance contract: fixed seed => identical predictions whether
  // the batch is served by 1 thread or many.
  const unsigned kSeed = 11;
  const auto qw = sample_qweights(4, 4, kSeed);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  cfg.seed = kSeed;
  const data::DataSplit split = data::generate_synthetic_mnist(24, 1, kSeed);

  std::vector<nn::Tensor> features;
  for (unsigned threads : {1u, 2u, 5u}) {
    RuntimeConfig rc;
    rc.threads = threads;
    rc.chunk_images = 3;
    InferenceEngine engine("sc-conventional", qw, cfg, rc);
    features.push_back(engine.features(split.train.images));
    EXPECT_EQ(engine.last_stats().threads, threads);
  }
  for (std::size_t v = 1; v < features.size(); ++v) {
    ASSERT_EQ(features[v].size(), features[0].size());
    for (std::size_t i = 0; i < features[0].size(); ++i) {
      ASSERT_EQ(features[v][i], features[0][i])
          << "thread variant " << v << " diverged at " << i;
    }
  }
}

TEST(InferenceEngine, PredictionsIdenticalAt1VsNThreads) {
  const auto qw = sample_qweights(4, 4, 6);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  const data::DataSplit split = data::generate_synthetic_mnist(16, 1, 29);

  hybrid::LeNetConfig lenet{4, 4, 16, 0.0f};
  auto predictions_with = [&](unsigned threads) {
    RuntimeConfig rc;
    rc.threads = threads;
    rc.chunk_images = 2;
    nn::Rng rng(99);  // same seed => same tail weights
    hybrid::HybridNetwork net(
        hybrid::make_first_layer_engine(hybrid::FirstLayerDesign::kScProposed,
                                        qw, cfg),
        hybrid::build_tail(lenet, rng), rc);
    return net.predict(split.train.images);
  };
  EXPECT_EQ(predictions_with(1), predictions_with(4));
}

TEST(InferenceEngine, StatsReportBatchAndEnergy) {
  const auto qw = sample_qweights(4, 4, 7);
  hybrid::FirstLayerConfig cfg;
  cfg.bits = 4;
  const data::DataSplit split = data::generate_synthetic_mnist(10, 1, 31);

  RuntimeConfig rc;
  rc.threads = 2;
  InferenceEngine engine("sc-proposed", qw, cfg, rc);
  (void)engine.features(split.train.images);
  const BatchStats& stats = engine.last_stats();
  EXPECT_EQ(stats.images, 10);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_GE(stats.latency_ms, 0.0);
  EXPECT_GT(stats.images_per_sec, 0.0);
  // 4-bit proposed SC has a calibrated hardware model -> non-zero energy.
  EXPECT_GT(stats.energy_j, 0.0);
  // ... and an SC backend reports its cycle spend.
  EXPECT_GT(stats.sc_cycles, 0.0);
}

// ---------------------------------------------------- vectorized fast tail

constexpr hybrid::LeNetConfig kTestLeNet{4, 3, 16, 0.0f};

// One engine + attached tail, plus an identically-seeded standalone tail
// to serve as the Network::forward reference.
struct FastTailRig {
  InferenceEngine engine;
  nn::Network ref_tail;

  explicit FastTailRig(unsigned threads, int chunk_images = 4)
      : engine("sc-proposed", sample_qweights(kTestLeNet.conv1_kernels, 4, 9),
               [] {
                 hybrid::FirstLayerConfig c;
                 c.bits = 4;
                 return c;
               }(),
               [&] {
                 RuntimeConfig rc;
                 rc.threads = threads;
                 rc.chunk_images = chunk_images;
                 return rc;
               }()),
        ref_tail([] {
          nn::Rng rng(77);
          return hybrid::build_tail(kTestLeNet, rng);
        }()) {
    nn::Rng rng(77);  // same seed => same weights as ref_tail
    engine.set_tail(hybrid::build_tail(kTestLeNet, rng));
  }
};

TEST(FastTail, BuildsPlanForTheLeNetTail) {
  FastTailRig rig(2);
  EXPECT_TRUE(rig.engine.has_fast_tail());
}

// The acceptance gate: classify()'s labels AND margins are bit-identical
// to the Network::forward + softmax_margins reference, across thread
// counts and odd batch sizes (1, 7, max) at the ambient dispatch level
// (CI reruns this suite with SCBNN_SIMD=scalar).
TEST(FastTail, ClassifyBitIdenticalToReferenceAcrossThreadsAndBatches) {
  const data::DataSplit split = data::generate_synthetic_mnist(16, 1, 41);
  for (const unsigned threads : {1u, 3u}) {
    FastTailRig rig(threads, 3);
    ASSERT_TRUE(rig.engine.has_fast_tail());
    for (const int n : {1, 7, 16}) {
      nn::Tensor batch({n, 1, 28, 28});
      std::copy(split.train.images.data(),
                split.train.images.data() + batch.size(), batch.data());

      const nn::Tensor feats = rig.engine.features(batch);
      const nn::Tensor ref_logits = rig.ref_tail.forward(feats, false);
      const auto ref_margins = nn::softmax_margins(ref_logits);

      std::vector<Prediction> preds(static_cast<std::size_t>(n));
      (void)rig.engine.classify(batch.data(), n, preds.data());
      for (int i = 0; i < n; ++i) {
        const auto& rm = ref_margins[static_cast<std::size_t>(i)];
        ASSERT_EQ(preds[static_cast<std::size_t>(i)].label, rm.best)
            << "threads=" << threads << " n=" << n << " image " << i;
        ASSERT_EQ(
            std::bit_cast<std::uint64_t>(
                preds[static_cast<std::size_t>(i)].margin),
            std::bit_cast<std::uint64_t>(rm.margin))
            << "threads=" << threads << " n=" << n << " image " << i;
      }
    }
  }
}

TEST(FastTail, PredictMatchesExternalTailReference) {
  const data::DataSplit split = data::generate_synthetic_mnist(11, 1, 43);
  FastTailRig rig(2);
  const std::vector<int> fast = rig.engine.predict(split.train.images);
  const std::vector<int> ref =
      rig.engine.predict(split.train.images, rig.ref_tail);
  EXPECT_EQ(fast, ref);
}

TEST(FastTail, ReportsStageSplit) {
  const data::DataSplit split = data::generate_synthetic_mnist(8, 1, 47);
  FastTailRig rig(2);
  const auto preds = rig.engine.Servable::classify(split.train.images);
  ASSERT_EQ(preds.size(), 8u);
  const BatchStats& stats = rig.engine.last_stats();
  EXPECT_GE(stats.first_layer_ms, 0.0);
  EXPECT_GT(stats.tail_ms, 0.0);
  EXPECT_LE(stats.first_layer_ms + stats.tail_ms, stats.latency_ms + 1e-6);
}

// Mutating the tail through the engine's accessor must reach the next
// classify() — the plan's packed Dense weights are re-packed, not stale.
TEST(FastTail, RetrainedTailParametersAreNotStale) {
  const data::DataSplit split = data::generate_synthetic_mnist(9, 1, 53);
  FastTailRig rig(2);
  auto nudge = [](nn::Network& net) {
    for (const nn::Param& p : net.params()) {
      for (std::size_t i = 0; i < p.value->size(); ++i) {
        (*p.value)[i] += 0.25f * static_cast<float>(i % 3);
      }
    }
  };
  nudge(rig.engine.tail());
  nudge(rig.ref_tail);

  const nn::Tensor feats = rig.engine.features(split.train.images);
  const nn::Tensor ref_logits = rig.ref_tail.forward(feats, false);
  const auto ref_margins = nn::softmax_margins(ref_logits);

  std::vector<Prediction> preds(9);
  (void)rig.engine.classify(split.train.images.data(), 9, preds.data());
  for (int i = 0; i < 9; ++i) {
    ASSERT_EQ(preds[static_cast<std::size_t>(i)].label,
              ref_margins[static_cast<std::size_t>(i)].best)
        << "image " << i;
    ASSERT_EQ(std::bit_cast<std::uint64_t>(
                  preds[static_cast<std::size_t>(i)].margin),
              std::bit_cast<std::uint64_t>(
                  ref_margins[static_cast<std::size_t>(i)].margin))
        << "image " << i;
  }
}

// The tentpole's warm-path contract: after one warm-up batch, classify()
// performs ZERO heap allocations — features/logits live in grow-only
// buffers, the plan runs out of per-worker arenas, margins are computed on
// the stack, and the executor's parallel_for frames are pooled.
TEST(FastTail, ClassifyWarmPathIsAllocationFree) {
  const data::DataSplit split = data::generate_synthetic_mnist(12, 1, 59);
  FastTailRig rig(3);
  ASSERT_TRUE(rig.engine.has_fast_tail());
  std::vector<Prediction> preds(12);
  // Warm up: buffers grow, executor pools its loop frames.
  (void)rig.engine.classify(split.train.images.data(), 12, preds.data());
  (void)rig.engine.classify(split.train.images.data(), 12, preds.data());

  const long long before = g_heap_allocs.load(std::memory_order_relaxed);
  (void)rig.engine.classify(split.train.images.data(), 12, preds.data());
  // A smaller batch reuses the grown buffers too.
  (void)rig.engine.classify(split.train.images.data(), 5, preds.data());
  const long long after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "warm classify() allocated " << (after - before) << " times";
}

// ------------------------------------------------------------ InferencePlan

TEST(InferencePlan, MatchesNetworkForwardBitExactAtEveryLevel) {
  nn::Rng rng(123);
  nn::Network net = hybrid::build_tail(kTestLeNet, rng);
  nn::InferencePlan plan(net, kTestLeNet.conv1_kernels, 28, 28);
  ASSERT_EQ(plan.classes(), 10);

  const int kBatch = 5;
  nn::Tensor x({kBatch, kTestLeNet.conv1_kernels, 28, 28});
  nn::Rng data_rng(7);
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Ternary feature-like inputs plus signed zeros.
    const float r = data_rng.normal(0.0f, 1.0f);
    x[i] = r > 0.5f ? 1.0f : (r < -0.5f ? -1.0f : (r > 0.0f ? 0.0f : -0.0f));
  }
  const nn::Tensor want = net.forward(x, false);

  for (const sc::simd::Level level : sc::simd::available_levels()) {
    // Whole batch in one run, and image-by-image (chunk boundaries must
    // not change a bit).
    auto arena = plan.make_arena(kBatch);
    std::vector<float> got(static_cast<std::size_t>(kBatch) * 10);
    plan.run(x.data(), kBatch, got.data(), arena, level);
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                std::bit_cast<std::uint32_t>(want[i]))
          << "level " << sc::simd::to_string(level) << " logit " << i;
    }
    auto arena1 = plan.make_arena(1);
    for (int b = 0; b < kBatch; ++b) {
      std::vector<float> row(10);
      plan.run(x.data() + static_cast<std::size_t>(b) * plan.input_size(), 1,
               row.data(), arena1, level);
      for (int c = 0; c < 10; ++c) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(row[static_cast<std::size_t>(c)]),
                  std::bit_cast<std::uint32_t>(want.at2(b, c)))
            << "level " << sc::simd::to_string(level) << " image " << b;
      }
    }
  }
}

TEST(InferencePlan, RejectsUnsupportedLayersAndBadShapes) {
  nn::Rng rng(5);
  {
    nn::Network net;
    net.add<nn::Tanh>();
    EXPECT_THROW(nn::InferencePlan(net, 1, 28, 28), std::invalid_argument);
  }
  {
    nn::Network net;  // Conv2D channel mismatch: expects 3, input has 4
    net.add<nn::Conv2D>(3, 2, 5, 2, rng);
    EXPECT_THROW(nn::InferencePlan(net, 4, 28, 28), std::invalid_argument);
  }
  {
    nn::Network net;  // Dense feature mismatch
    net.add<nn::Dense>(100, 10, rng);
    EXPECT_THROW(nn::InferencePlan(net, 1, 28, 28), std::invalid_argument);
  }
  {
    nn::Network net;  // MaxPool2 on odd spatial dims
    net.add<nn::MaxPool2>();
    EXPECT_THROW(nn::InferencePlan(net, 1, 7, 7), std::invalid_argument);
  }
  {
    nn::Network net;  // Conv2D eats the whole image -> empty output
    net.add<nn::Conv2D>(1, 2, 5, 0, rng);
    EXPECT_THROW(nn::InferencePlan(net, 1, 4, 4), std::invalid_argument);
  }
  EXPECT_THROW(
      {
        nn::Network net;
        net.add<nn::Dense>(784, 10, rng);
        nn::InferencePlan plan(net, 1, 28, 28);
        (void)plan.make_arena(0);
      },
      std::invalid_argument);
}

TEST(InferencePlan, RunRejectsBatchBeyondArenaCapacity) {
  nn::Rng rng(6);
  nn::Network net;
  net.add<nn::Dense>(784, 10, rng);
  nn::InferencePlan plan(net, 1, 28, 28);
  auto arena = plan.make_arena(2);
  std::vector<float> x(static_cast<std::size_t>(3) * 784, 0.5f);
  std::vector<float> logits(static_cast<std::size_t>(3) * 10);
  EXPECT_THROW(plan.run(x.data(), 3, logits.data(), arena,
                        sc::simd::Level::kScalar),
               std::invalid_argument);
}

}  // namespace
}  // namespace scbnn::runtime
