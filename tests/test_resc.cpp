#include "sc/resc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sc/fault.h"

namespace scbnn::sc {
namespace {

TEST(Bernstein, CoefficientsSampleTheFunction) {
  const auto b = bernstein_coefficients([](double x) { return x * x; }, 4);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_DOUBLE_EQ(b[0], 0.0);
  EXPECT_DOUBLE_EQ(b[2], 0.25);
  EXPECT_DOUBLE_EQ(b[4], 1.0);
}

TEST(Bernstein, CoefficientsClampToUnit) {
  const auto b =
      bernstein_coefficients([](double x) { return 2.0 * x - 0.5; }, 2);
  EXPECT_DOUBLE_EQ(b[0], 0.0);  // clamped from -0.5
  EXPECT_DOUBLE_EQ(b[2], 1.0);  // clamped from 1.5
}

TEST(Bernstein, ValueEvaluation) {
  // Linear coefficients reproduce the identity exactly at any degree.
  const std::vector<double> b{0.0, 0.5, 1.0};
  EXPECT_NEAR(bernstein_value(b, 0.3), 0.3, 1e-12);
  EXPECT_NEAR(bernstein_value(b, 0.9), 0.9, 1e-12);
}

TEST(Bernstein, ConvergesWithDegree) {
  const auto f = [](double x) { return std::pow(x, 0.45); };  // gamma corr.
  double err_low = 0.0, err_high = 0.0;
  for (double x = 0.05; x < 1.0; x += 0.1) {
    err_low += std::abs(bernstein_value(bernstein_coefficients(f, 3), x) -
                        f(x));
    err_high += std::abs(bernstein_value(bernstein_coefficients(f, 12), x) -
                         f(x));
  }
  EXPECT_LT(err_high, err_low);
}

TEST(ReSc, Validation) {
  EXPECT_THROW(ReScUnit({0.5}), std::invalid_argument);
  EXPECT_THROW(ReScUnit({0.5, 1.5}), std::invalid_argument);
  EXPECT_THROW(ReScUnit({-0.1, 0.5}), std::invalid_argument);
}

TEST(ReSc, EvaluatesGammaCorrection) {
  // The ReSC paper's flagship example: x^0.45 on an image sensor pipeline.
  const auto f = [](double x) { return std::pow(x, 0.45); };
  ReScUnit unit(bernstein_coefficients(f, 6), 11);
  for (double x : {0.1, 0.3, 0.5, 0.8}) {
    const Bitstream out = unit.evaluate(x, 16384);
    const double expected = bernstein_value(unit.coefficients(), x);
    EXPECT_NEAR(out.unipolar(), expected, 0.03) << "x = " << x;
  }
}

TEST(ReSc, DegreeMatchesCoefficients) {
  ReScUnit unit(std::vector<double>{0.0, 0.5, 1.0});
  EXPECT_EQ(unit.degree(), 2u);
}

TEST(ReSc, SquaringCircuit) {
  // Uniform-node Bernstein coefficients approximate x^2 as
  // x^2 + x(1-x)/K — the circuit must match the POLYNOMIAL exactly
  // (0.42 at x=0.6, K=4), not the underlying function (0.36).
  const auto b = bernstein_coefficients([](double x) { return x * x; }, 4);
  ReScUnit unit(b, 5);
  const Bitstream out = unit.evaluate(0.6, 16384);
  EXPECT_NEAR(out.unipolar(), bernstein_value(b, 0.6), 0.03);
  EXPECT_NEAR(bernstein_value(b, 0.6), 0.36 + 0.6 * 0.4 / 4.0, 1e-12);
}

TEST(ReSc, GracefulUnderStreamFaults) {
  // The fault-tolerance claim of [25]: injecting bit flips into the ReSC
  // output stream degrades the value proportionally to the BER, with no
  // catastrophic failure mode.
  const auto f = [](double x) { return std::pow(x, 0.45); };
  ReScUnit unit(bernstein_coefficients(f, 6), 3);
  const Bitstream clean = unit.evaluate(0.5, 8192);
  const double base = clean.unipolar();
  double prev_err = 0.0;
  for (double ber : {0.005, 0.02, 0.08}) {
    const double err =
        std::abs(inject_stream_faults(clean, ber, 9).unipolar() - base);
    EXPECT_LE(err, ber + 0.02) << "ber " << ber;
    EXPECT_GE(err + 0.01, prev_err);
    prev_err = err;
  }
}

}  // namespace
}  // namespace scbnn::sc
