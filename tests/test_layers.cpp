// Layer-level tests: shape logic, known-value forwards, and numerical
// gradient checks of every backward pass.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/loss.h"
#include "nn/maxpool.h"

namespace scbnn::nn {
namespace {

Tensor random_tensor(std::vector<int> shape, Rng& rng, float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = rng.uniform(-scale, scale);
  }
  return t;
}

/// Scalar objective used for gradient checks: sum of c_i * y_i with fixed
/// pseudo-random coefficients (exercises all output positions).
float weighted_sum(const Tensor& y) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < y.size(); ++i) {
    acc += y[i] * static_cast<float>((i % 7) + 1) * 0.1f;
  }
  return acc;
}

Tensor weighted_sum_grad(const Tensor& y) {
  Tensor g(y.shape());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = static_cast<float>((i % 7) + 1) * 0.1f;
  }
  return g;
}

/// Central-difference check of d(weighted_sum(layer(x)))/dx and /dparams.
void gradient_check(Layer& layer, Tensor x, float tol = 2e-2f) {
  Tensor y = layer.forward(x, /*training=*/true);
  layer.zero_grad();
  Tensor dx = layer.backward(weighted_sum_grad(y));
  ASSERT_EQ(dx.shape(), x.shape());

  const float eps = 1e-3f;
  // Input gradients (probe a spread of positions).
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(1, x.size() / 23)) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float up = weighted_sum(layer.forward(x, true));
    x[i] = orig - eps;
    const float down = weighted_sum(layer.forward(x, true));
    x[i] = orig;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(dx[i], numeric, tol) << "input grad at " << i;
  }
  // Parameter gradients. Re-establish caches for the unperturbed x first.
  (void)layer.forward(x, true);
  layer.zero_grad();
  (void)layer.backward(weighted_sum_grad(y));
  for (auto& p : layer.params()) {
    Tensor& w = *p.value;
    const Tensor& g = *p.grad;
    for (std::size_t i = 0; i < w.size();
         i += std::max<std::size_t>(1, w.size() / 17)) {
      const float orig = w[i];
      w[i] = orig + eps;
      const float up = weighted_sum(layer.forward(x, true));
      w[i] = orig - eps;
      const float down = weighted_sum(layer.forward(x, true));
      w[i] = orig;
      const float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(g[i], numeric, tol) << p.name << " grad at " << i;
    }
  }
}

TEST(Conv2D, KnownValueForward) {
  Rng rng(1);
  Conv2D conv(1, 1, 3, 0, rng);
  conv.weights().fill(1.0f);  // 3x3 box filter
  conv.bias().fill(0.5f);
  Tensor x({1, 1, 3, 3});
  for (int i = 0; i < 9; ++i) x[i] = static_cast<float>(i);
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 1, 1}));
  EXPECT_NEAR(y[0], 36.0f + 0.5f, 1e-5f);  // sum 0..8 plus bias
}

TEST(Conv2D, SamePaddingPreservesSize) {
  Rng rng(2);
  Conv2D conv(1, 4, 5, 2, rng);
  Tensor x({2, 1, 28, 28});
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 4, 28, 28}));
}

TEST(Conv2D, GradientCheck) {
  Rng rng(3);
  Conv2D conv(2, 3, 3, 1, rng);
  gradient_check(conv, random_tensor({2, 2, 5, 5}, rng));
}

TEST(Conv2D, RejectsWrongChannelCount) {
  Rng rng(4);
  Conv2D conv(3, 2, 3, 0, rng);
  Tensor x({1, 2, 5, 5});
  EXPECT_THROW((void)conv.forward(x, false), std::invalid_argument);
}

TEST(Im2Col, ZeroPaddingPlacesBorderZeros) {
  // One channel 2x2 image, 3x3 kernel, pad 1 -> 9 rows x 4 cols.
  const float img[4] = {1, 2, 3, 4};
  std::vector<float> col(9 * 4, -1.0f);
  Conv2D::im2col(img, 1, 2, 2, 3, 1, col.data());
  // Center tap (ki=1, kj=1) row index 4 holds the unshifted image.
  EXPECT_EQ(col[4 * 4 + 0], 1.0f);
  EXPECT_EQ(col[4 * 4 + 3], 4.0f);
  // Top-left tap (ki=0, kj=0) sees zeros for the first output row/col.
  EXPECT_EQ(col[0 * 4 + 0], 0.0f);
  EXPECT_EQ(col[0 * 4 + 3], 1.0f);
}

TEST(MaxPool2, ForwardPicksMaxima) {
  MaxPool2 pool;
  Tensor x({1, 1, 4, 4});
  for (int i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 2, 2}));
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 7.0f);
  EXPECT_EQ(y[2], 13.0f);
  EXPECT_EQ(y[3], 15.0f);
}

TEST(MaxPool2, BackwardRoutesToArgmax) {
  MaxPool2 pool;
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f; x[1] = 4.0f; x[2] = 2.0f; x[3] = 3.0f;
  (void)pool.forward(x, true);
  Tensor g({1, 1, 1, 1});
  g[0] = 1.0f;
  Tensor dx = pool.backward(g);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 1.0f);
  EXPECT_EQ(dx[2], 0.0f);
  EXPECT_EQ(dx[3], 0.0f);
}

TEST(MaxPool2, RejectsOddSizes) {
  MaxPool2 pool;
  Tensor x({1, 1, 3, 4});
  EXPECT_THROW((void)pool.forward(x, true), std::invalid_argument);
}

TEST(Dense, GradientCheck) {
  Rng rng(5);
  Dense dense(6, 4, rng);
  gradient_check(dense, random_tensor({3, 6}, rng));
}

TEST(Dense, FlattensHigherRankInput) {
  Rng rng(6);
  Dense dense(8, 2, rng);
  Tensor x({2, 2, 2, 2});
  Tensor y = dense.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 2}));
  // Backward restores the original shape.
  (void)dense.forward(x, true);
  Tensor dx = dense.backward(Tensor({2, 2}));
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Dense, RejectsFeatureMismatch) {
  Rng rng(7);
  Dense dense(8, 2, rng);
  Tensor x({2, 7});
  EXPECT_THROW((void)dense.forward(x, false), std::invalid_argument);
}

TEST(ReLU, ForwardClampsAndBackwardMasks) {
  ReLU relu;
  Tensor x({1, 4});
  x[0] = -1.0f; x[1] = 0.0f; x[2] = 2.0f; x[3] = -0.5f;
  Tensor y = relu.forward(x, true);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor g = Tensor::full({1, 4}, 1.0f);
  Tensor dx = relu.backward(g);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[2], 1.0f);
}

TEST(Sign, TernaryOutput) {
  SignActivation sign(0.5f);
  Tensor x({1, 3});
  x[0] = 2.0f; x[1] = 0.2f; x[2] = -1.0f;
  Tensor y = sign.forward(x, false);
  EXPECT_EQ(y[0], 1.0f);
  EXPECT_EQ(y[1], 0.0f);  // inside the dead zone
  EXPECT_EQ(y[2], -1.0f);
}

TEST(Sign, StraightThroughGradient) {
  SignActivation sign;
  Tensor x({1, 2});
  x[0] = 0.5f;   // |x| <= 1: gradient passes
  x[1] = 3.0f;   // |x| > 1: gradient clipped
  (void)sign.forward(x, true);
  Tensor g = Tensor::full({1, 2}, 2.0f);
  Tensor dx = sign.backward(g);
  EXPECT_EQ(dx[0], 2.0f);
  EXPECT_EQ(dx[1], 0.0f);
}

TEST(Tanh, ForwardAndGradientCheck) {
  Tanh tanh_layer;
  Tensor x({1, 3});
  x[0] = -2.0f; x[1] = 0.0f; x[2] = 1.0f;
  Tensor y = tanh_layer.forward(x, true);
  EXPECT_NEAR(y[0], std::tanh(-2.0f), 1e-6f);
  EXPECT_NEAR(y[1], 0.0f, 1e-6f);
  EXPECT_NEAR(y[2], std::tanh(1.0f), 1e-6f);
  Rng rng(11);
  Tanh fresh;
  gradient_check(fresh, random_tensor({2, 5}, rng), 1e-2f);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout drop(0.5f);
  Tensor x = Tensor::full({4, 4}, 3.0f);
  Tensor y = drop.forward(x, /*training=*/false);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], 3.0f);
}

TEST(Dropout, TrainingPreservesExpectation) {
  Dropout drop(0.5f, 42);
  Tensor x = Tensor::full({1, 10000}, 1.0f);
  Tensor y = drop.forward(x, true);
  double mean = 0.0;
  int zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    mean += y[i];
    if (y[i] == 0.0f) ++zeros;
  }
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 1.0, 0.05);                       // inverted scaling
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.05);            // drop rate
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5f, 7);
  Tensor x = Tensor::full({1, 100}, 1.0f);
  Tensor y = drop.forward(x, true);
  Tensor dx = drop.backward(Tensor::full({1, 100}, 1.0f));
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(dx[i], y[i]);
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
}

TEST(Loss, SoftmaxRowsSumToOne) {
  Tensor logits({2, 3});
  logits.at2(0, 0) = 5.0f;
  logits.at2(1, 2) = -3.0f;
  Tensor p = softmax(logits);
  for (int b = 0; b < 2; ++b) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) sum += p.at2(b, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Loss, CrossEntropyGradientCheck) {
  Rng rng(8);
  Tensor logits = random_tensor({3, 5}, rng, 2.0f);
  const std::vector<int> labels{1, 4, 0};
  const LossResult base = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const double up = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig - eps;
    const double down = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig;
    EXPECT_NEAR(base.grad[i], (up - down) / (2 * eps), 1e-3)
        << "logit " << i;
  }
}

TEST(Loss, PerfectPredictionHasLowLoss) {
  Tensor logits({1, 3});
  logits.at2(0, 1) = 20.0f;
  const LossResult r = softmax_cross_entropy(logits, std::vector<int>{1});
  EXPECT_LT(r.loss, 1e-4);
}

TEST(Loss, AccuracyMetric) {
  Tensor logits({2, 3});
  logits.at2(0, 2) = 1.0f;  // predicts 2
  logits.at2(1, 0) = 1.0f;  // predicts 0
  EXPECT_DOUBLE_EQ(accuracy(logits, std::vector<int>{2, 1}), 0.5);
}

TEST(Loss, RejectsBadLabels) {
  Tensor logits({1, 3});
  EXPECT_THROW((void)softmax_cross_entropy(logits, std::vector<int>{3}),
               std::invalid_argument);
  EXPECT_THROW((void)softmax_cross_entropy(logits, std::vector<int>{0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace scbnn::nn
