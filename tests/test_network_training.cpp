// End-to-end training tests on small synthetic problems, plus optimizer and
// serialization behavior.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/trainer.h"

namespace scbnn::nn {
namespace {

/// Two-class ring problem: class 0 inside radius 0.5, class 1 outside —
/// not linearly separable, so the hidden layer must do real work.
void make_rings(int n, Tensor& x, std::vector<int>& y, std::uint64_t seed) {
  Rng rng(seed);
  x = Tensor({n, 2});
  y.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const bool outer = (i % 2) == 1;
    const float r = outer ? rng.uniform(0.7f, 1.0f) : rng.uniform(0.0f, 0.4f);
    const float a = rng.uniform(0.0f, 6.2831853f);
    x.at2(i, 0) = r * std::cos(a);
    x.at2(i, 1) = r * std::sin(a);
    y[static_cast<std::size_t>(i)] = outer ? 1 : 0;
  }
}

Network make_mlp(Rng& rng, int hidden = 16) {
  Network net;
  net.add<Dense>(2, hidden, rng);
  net.add<ReLU>();
  net.add<Dense>(hidden, 2, rng);
  return net;
}

TEST(Training, AdamSolvesRings) {
  Tensor x;
  std::vector<int> y;
  make_rings(600, x, y, 3);
  Rng rng(1);
  Network net = make_mlp(rng);
  Adam opt(5e-3f);
  TrainConfig tc;
  tc.epochs = 40;
  tc.batch_size = 32;
  const auto stats = fit(net, opt, x, y, tc);
  EXPECT_GT(stats.back().train_accuracy, 0.95);
  EXPECT_LT(stats.back().train_loss, stats.front().train_loss);
  EXPECT_GT(evaluate_accuracy(net, x, y), 0.95);
}

TEST(Training, SgdMomentumAlsoLearns) {
  Tensor x;
  std::vector<int> y;
  make_rings(600, x, y, 4);
  Rng rng(2);
  Network net = make_mlp(rng);
  Sgd opt(0.05f, 0.9f);
  TrainConfig tc;
  tc.epochs = 50;
  tc.batch_size = 32;
  const auto stats = fit(net, opt, x, y, tc);
  EXPECT_GT(stats.back().train_accuracy, 0.9);
}

TEST(Training, LossDecreasesMonotonicallyOnAverage) {
  Tensor x;
  std::vector<int> y;
  make_rings(400, x, y, 5);
  Rng rng(3);
  Network net = make_mlp(rng);
  Adam opt(5e-3f);
  TrainConfig tc;
  tc.epochs = 10;
  const auto stats = fit(net, opt, x, y, tc);
  EXPECT_LT(stats.back().train_loss, 0.8 * stats.front().train_loss);
}

TEST(Training, EpochCallbackInvoked) {
  Tensor x;
  std::vector<int> y;
  make_rings(64, x, y, 6);
  Rng rng(4);
  Network net = make_mlp(rng, 4);
  Adam opt;
  TrainConfig tc;
  tc.epochs = 3;
  int calls = 0;
  (void)fit(net, opt, x, y, tc, [&calls](const EpochStats& es) {
    EXPECT_EQ(es.epoch, calls);
    ++calls;
  });
  EXPECT_EQ(calls, 3);
}

TEST(Training, DeterministicWithFixedSeeds) {
  Tensor x;
  std::vector<int> y;
  make_rings(200, x, y, 7);
  auto run = [&] {
    Rng rng(5);
    Network net = make_mlp(rng, 8);
    Adam opt(1e-3f);
    TrainConfig tc;
    tc.epochs = 4;
    tc.shuffle_seed = 99;
    const auto stats = fit(net, opt, x, y, tc);
    return stats.back().train_loss;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Network, PredictReturnsArgmax) {
  Rng rng(6);
  Network net;
  auto& dense = net.add<Dense>(2, 3, rng);
  dense.weights().fill(0.0f);
  dense.bias()[1] = 5.0f;  // always class 1
  Tensor x({4, 2});
  const auto pred = net.predict(x);
  ASSERT_EQ(pred.size(), 4u);
  for (int p : pred) EXPECT_EQ(p, 1);
}

TEST(Network, ParameterCount) {
  Rng rng(7);
  Network net = make_mlp(rng, 10);
  // Dense(2->10): 30 params; Dense(10->2): 22 params.
  EXPECT_EQ(net.parameter_count(), 2u * 10 + 10 + 10 * 2 + 2);
}

TEST(Network, GatherBatchExtractsRows) {
  Tensor x({4, 3});
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  const std::vector<int> idx{2, 0};
  Tensor b = gather_batch(x, idx);
  EXPECT_EQ(b.shape(), (std::vector<int>{2, 3}));
  EXPECT_EQ(b.at2(0, 0), 6.0f);
  EXPECT_EQ(b.at2(1, 0), 0.0f);
}

TEST(Serialize, RoundTripPreservesPredictions) {
  Tensor x;
  std::vector<int> y;
  make_rings(200, x, y, 8);
  Rng rng(8);
  Network net = make_mlp(rng);
  Adam opt(5e-3f);
  TrainConfig tc;
  tc.epochs = 10;
  (void)fit(net, opt, x, y, tc);
  const auto before = net.predict(x);

  const std::string path =
      (std::filesystem::temp_directory_path() / "scbnn_test_params.bin")
          .string();
  save_params(net, path);
  EXPECT_TRUE(params_file_valid(path));

  Rng rng2(999);  // different init — must be fully overwritten by load
  Network restored = make_mlp(rng2);
  load_params(restored, path);
  EXPECT_EQ(restored.predict(x), before);
  std::remove(path.c_str());
}

TEST(Serialize, LoadRejectsShapeMismatch) {
  Rng rng(9);
  Network small = make_mlp(rng, 4);
  Network big = make_mlp(rng, 8);
  const std::string path =
      (std::filesystem::temp_directory_path() / "scbnn_test_mismatch.bin")
          .string();
  save_params(small, path);
  EXPECT_THROW(load_params(big, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileHandled) {
  EXPECT_FALSE(params_file_valid("/nonexistent/scbnn.bin"));
  Rng rng(10);
  Network net = make_mlp(rng);
  EXPECT_THROW(load_params(net, "/nonexistent/scbnn.bin"),
               std::runtime_error);
}

TEST(Optimizer, AdamStepMovesAgainstGradient) {
  Tensor w({2});
  Tensor g({2});
  w[0] = 1.0f;
  g[0] = 1.0f;   // positive gradient -> value must decrease
  g[1] = -1.0f;  // negative gradient -> value must increase
  Adam opt(0.1f);
  opt.step({{&w, &g, "w"}});
  EXPECT_LT(w[0], 1.0f);
  EXPECT_GT(w[1], 0.0f);
}

TEST(Optimizer, SgdMomentumAccumulates) {
  Tensor w({1});
  Tensor g = Tensor::full({1}, 1.0f);
  Sgd opt(0.1f, 0.9f);
  opt.step({{&w, &g, "w"}});
  const float first_step = w[0];
  opt.step({{&w, &g, "w"}});
  const float second_step = w[0] - first_step;
  EXPECT_LT(second_step, first_step);  // both negative, second larger in mag
  EXPECT_GT(std::abs(second_step), std::abs(first_step));
}

}  // namespace
}  // namespace scbnn::nn
