#include "sc/stream_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sc/correlation.h"
#include "sc/lfsr.h"
#include "sc/sng.h"

namespace scbnn::sc {
namespace {

TEST(CorrelatedMax, ExactOnRampStreams) {
  // Ramp-compare converter outputs are prefix-ones: SCC = +1, so OR is an
  // exact max — for every value pair.
  const std::size_t n = 64;
  for (std::size_t a = 0; a <= n; a += 9) {
    for (std::size_t b = 0; b <= n; b += 11) {
      const Bitstream x = Bitstream::prefix_ones(n, a);
      const Bitstream y = Bitstream::prefix_ones(n, b);
      EXPECT_EQ(correlated_max(x, y).count_ones(), std::max(a, b));
      EXPECT_EQ(correlated_min(x, y).count_ones(), std::min(a, b));
    }
  }
}

TEST(CorrelatedSubSat, ExactOnRampStreams) {
  const std::size_t n = 64;
  for (std::size_t a = 0; a <= n; a += 7) {
    for (std::size_t b = 0; b <= n; b += 13) {
      const Bitstream x = Bitstream::prefix_ones(n, a);
      const Bitstream y = Bitstream::prefix_ones(n, b);
      const std::size_t expected = a > b ? a - b : 0;
      EXPECT_EQ(correlated_sub_sat(x, y).count_ones(), expected);
    }
  }
}

TEST(CorrelatedMax, UpperBiasedOnIndependentStreams) {
  // On independent streams OR computes px + py - px*py >= max(px, py).
  Lfsr a(8, 1), b(8, 77, maximal_lfsr_taps_alt(8));
  const Bitstream x = generate_stream(a, 128, 256);
  const Bitstream y = generate_stream(b, 128, 256);
  EXPECT_GT(correlated_max(x, y).unipolar(),
            std::max(x.unipolar(), y.unipolar()));
}

TEST(StochasticMaxpool, FourWindowPool) {
  // The 2x2 pooling configuration of a stochastic pooling stage.
  std::vector<Bitstream> window = {
      Bitstream::prefix_ones(32, 10), Bitstream::prefix_ones(32, 25),
      Bitstream::prefix_ones(32, 3), Bitstream::prefix_ones(32, 17)};
  EXPECT_EQ(stochastic_maxpool(window).count_ones(), 25u);
}

TEST(StochasticMaxpool, SingleInputIsIdentity) {
  const Bitstream x = Bitstream::prefix_ones(16, 9);
  EXPECT_EQ(stochastic_maxpool({x}), x);
}

TEST(StochasticMaxpool, RejectsEmpty) {
  EXPECT_THROW((void)stochastic_maxpool({}), std::invalid_argument);
}

TEST(Delay, ShiftsCircularly) {
  const Bitstream x = Bitstream::from_string("1000 0000");
  EXPECT_EQ(delay(x, 2).to_string(), "00100000");
  EXPECT_EQ(delay(x, 8), x);   // full wrap
  EXPECT_EQ(delay(x, 10).to_string(), "00100000");  // modulo length
}

TEST(Delay, PreservesValue) {
  Lfsr src(8, 5);
  const Bitstream x = generate_stream(src, 90, 256);
  EXPECT_EQ(delay(x, 37).count_ones(), x.count_ones());
}

TEST(Delay, DecorrelatesLfsrStreamFromItself) {
  // The isolation trick: a DFF-delayed copy of an LFSR stream is nearly
  // uncorrelated with the original, so one SNG can drive two multiplier
  // inputs.
  Lfsr src(8, 5);
  const Bitstream x = generate_stream(src, 128, 255);
  EXPECT_NEAR(scc(x, x), 1.0, 1e-9);
  const double delayed_scc = std::abs(scc(x, delay(x, 31)));
  EXPECT_LT(delayed_scc, 0.25);
}

TEST(Delay, RejectsEmptyStream) {
  EXPECT_THROW((void)delay(Bitstream(), 1), std::invalid_argument);
}

}  // namespace
}  // namespace scbnn::sc
