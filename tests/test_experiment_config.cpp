// ExperimentConfig environment-override hardening: malformed SCBNN_* values
// must be rejected with the defaults kept, never half-parsed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "hybrid/experiment.h"

namespace scbnn::hybrid {
namespace {

/// Clears the given SCBNN_* variables on construction and destruction so
/// each test starts and ends with a clean environment.
class EnvGuard {
 public:
  explicit EnvGuard(std::vector<std::string> names)
      : names_(std::move(names)) {
    clear();
  }
  ~EnvGuard() { clear(); }

  void set(const std::string& name, const std::string& value) {
    ::setenv(name.c_str(), value.c_str(), /*overwrite=*/1);
  }

 private:
  void clear() {
    for (const auto& n : names_) ::unsetenv(n.c_str());
  }
  std::vector<std::string> names_;
};

const std::vector<std::string> kAllVars = {
    "SCBNN_TRAIN_N", "SCBNN_TEST_N",  "SCBNN_BASE_EPOCHS",
    "SCBNN_RETRAIN_EPOCHS", "SCBNN_THREADS", "SCBNN_QUICK",
    "SCBNN_FULL",    "SCBNN_VERBOSE"};

TEST(ExperimentConfigEnv, NoVariablesKeepsDefaults) {
  EnvGuard env(kAllVars);
  ExperimentConfig cfg;
  const ExperimentConfig defaults;
  cfg.apply_env_overrides();
  EXPECT_EQ(cfg.train_n, defaults.train_n);
  EXPECT_EQ(cfg.test_n, defaults.test_n);
  EXPECT_EQ(cfg.base_epochs, defaults.base_epochs);
  EXPECT_EQ(cfg.retrain_epochs, defaults.retrain_epochs);
  EXPECT_FALSE(cfg.verbose);
}

TEST(ExperimentConfigEnv, ValidValuesApply) {
  EnvGuard env(kAllVars);
  env.set("SCBNN_TRAIN_N", "123");
  env.set("SCBNN_TEST_N", "+45");  // explicit plus sign is fine
  env.set("SCBNN_BASE_EPOCHS", "2");
  env.set("SCBNN_RETRAIN_EPOCHS", "1");
  env.set("SCBNN_THREADS", "4");
  ExperimentConfig cfg;
  cfg.apply_env_overrides();
  EXPECT_EQ(cfg.train_n, 123u);
  EXPECT_EQ(cfg.test_n, 45u);
  EXPECT_EQ(cfg.base_epochs, 2);
  EXPECT_EQ(cfg.retrain_epochs, 1);
  EXPECT_EQ(cfg.threads, 4u);
}

TEST(ExperimentConfigEnv, MalformedValuesRejectedKeepingDefaults) {
  const ExperimentConfig defaults;
  for (const char* bad : {"banana", "", "-100", "0", "12abc", "4k", "1e6",
                          "2.5", " 7", "99999999999999999999"}) {
    EnvGuard env(kAllVars);
    env.set("SCBNN_TRAIN_N", bad);
    env.set("SCBNN_TEST_N", bad);
    env.set("SCBNN_BASE_EPOCHS", bad);
    ExperimentConfig cfg;
    cfg.apply_env_overrides();
    EXPECT_EQ(cfg.train_n, defaults.train_n) << "value: '" << bad << "'";
    EXPECT_EQ(cfg.test_n, defaults.test_n) << "value: '" << bad << "'";
    EXPECT_EQ(cfg.base_epochs, defaults.base_epochs)
        << "value: '" << bad << "'";
  }
}

TEST(ExperimentConfigEnv, ThreadsAcceptsZeroAsAuto) {
  EnvGuard env(kAllVars);
  env.set("SCBNN_THREADS", "0");  // documented "auto" setting, not malformed
  ExperimentConfig cfg;
  cfg.threads = 4;
  cfg.apply_env_overrides();
  EXPECT_EQ(cfg.threads, 0u);
  // ...but absurd thread counts are rejected.
  EnvGuard env2(kAllVars);
  env2.set("SCBNN_THREADS", "1000000");
  ExperimentConfig cfg2;
  cfg2.apply_env_overrides();
  EXPECT_EQ(cfg2.threads, 0u);
}

TEST(ExperimentConfigEnv, OutOfRangeValuesRejected) {
  EnvGuard env(kAllVars);
  env.set("SCBNN_TRAIN_N", "100000001");  // just above the accepted cap
  ExperimentConfig cfg;
  const ExperimentConfig defaults;
  cfg.apply_env_overrides();
  EXPECT_EQ(cfg.train_n, defaults.train_n);
}

TEST(ExperimentConfigEnv, MalformedValueDoesNotBlockOtherOverrides) {
  EnvGuard env(kAllVars);
  env.set("SCBNN_TRAIN_N", "garbage");
  env.set("SCBNN_TEST_N", "250");
  ExperimentConfig cfg;
  const ExperimentConfig defaults;
  cfg.apply_env_overrides();
  EXPECT_EQ(cfg.train_n, defaults.train_n);
  EXPECT_EQ(cfg.test_n, 250u);
}

TEST(ExperimentConfigEnv, QuickAndVerboseFlags) {
  EnvGuard env(kAllVars);
  env.set("SCBNN_QUICK", "1");
  env.set("SCBNN_VERBOSE", "1");
  ExperimentConfig cfg;
  cfg.apply_env_overrides();
  EXPECT_EQ(cfg.train_n, 1500u);
  EXPECT_EQ(cfg.test_n, 500u);
  EXPECT_TRUE(cfg.verbose);
  // "0" means off for flags.
  EnvGuard env2(kAllVars);
  env2.set("SCBNN_VERBOSE", "0");
  ExperimentConfig cfg2;
  cfg2.apply_env_overrides();
  EXPECT_FALSE(cfg2.verbose);
}

}  // namespace
}  // namespace scbnn::hybrid
