// ConsistentHashRing tests: the two properties fleet placement stands on —
// bounded-load uniformity (no shard exceeds the stated ceiling at 1k
// sessions x 4 shards) and minimal remap (a shard leaving or joining moves
// only the keys it must; no key ever hops between two surviving shards).
#include "fleet/consistent_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "sensor/session_driver.h"

namespace scbnn::fleet {
namespace {

std::vector<std::uint64_t> session_keys(int n) {
  std::vector<std::uint64_t> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    keys.push_back(sensor::SessionStreamDriver::sensor_id_for(7, s));
  }
  return keys;
}

TEST(ConsistentHash, RejectsInvalidConfig) {
  EXPECT_THROW(ConsistentHashRing(0, 1.25), std::invalid_argument);
  EXPECT_THROW(ConsistentHashRing(64, 1.0), std::invalid_argument);
  EXPECT_THROW(ConsistentHashRing(64, 0.5), std::invalid_argument);
}

TEST(ConsistentHash, EmptyRingThrows) {
  ConsistentHashRing ring;
  EXPECT_THROW((void)ring.owner(1), std::logic_error);
  EXPECT_THROW((void)ring.place(1), std::logic_error);
}

TEST(ConsistentHash, PlacementIsSticky) {
  ConsistentHashRing ring;
  for (std::uint32_t s = 0; s < 4; ++s) ring.add_shard(s);
  for (const std::uint64_t key : session_keys(100)) {
    const std::uint32_t first = ring.place(key);
    EXPECT_EQ(ring.place(key), first);
    EXPECT_EQ(ring.place(key), first);  // and load counted once
  }
  EXPECT_EQ(ring.sessions(), 100u);
}

TEST(ConsistentHash, ReleaseFreesTheLoadSlot) {
  ConsistentHashRing ring;
  ring.add_shard(0);
  ring.add_shard(1);
  const std::uint32_t shard = ring.place(42);
  EXPECT_EQ(ring.load(shard), 1u);
  ring.release(42);
  EXPECT_EQ(ring.load(shard), 0u);
  EXPECT_EQ(ring.sessions(), 0u);
  ring.release(42);  // unknown key is a no-op
}

TEST(ConsistentHash, ThousandSessionsAcrossFourShardsStayWithinBound) {
  // The acceptance-criteria operating point: 1k sessions, 4 shards. Every
  // shard must hold at most ceil(load_factor * sessions / shards) and the
  // load must actually spread (no empty shard).
  constexpr int kSessions = 1000;
  constexpr double kLoadFactor = 1.25;
  ConsistentHashRing ring(64, kLoadFactor);
  for (std::uint32_t s = 0; s < 4; ++s) ring.add_shard(s);
  for (const std::uint64_t key : session_keys(kSessions)) {
    (void)ring.place(key);
  }
  EXPECT_EQ(ring.sessions(), static_cast<std::size_t>(kSessions));
  const auto bound = static_cast<std::size_t>(kLoadFactor * kSessions / 4) + 1;
  std::size_t total = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_LE(ring.load(s), bound) << "shard " << s;
    EXPECT_GT(ring.load(s), 0u) << "shard " << s;
    total += ring.load(s);
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kSessions));
}

TEST(ConsistentHash, ShardLossRemapsOnlyTheDepartingShardsKeys) {
  ConsistentHashRing ring;
  for (std::uint32_t s = 0; s < 4; ++s) ring.add_shard(s);
  const std::vector<std::uint64_t> keys = session_keys(1000);
  std::map<std::uint64_t, std::uint32_t> before;
  for (const std::uint64_t key : keys) before[key] = ring.place(key);

  ring.remove_shard(2);

  for (const std::uint64_t key : keys) {
    const std::uint32_t now = ring.place(key);
    EXPECT_NE(now, 2u);
    if (before[key] != 2) {
      // Survivors' sessions never move.
      EXPECT_EQ(now, before[key]) << "key " << key;
    }
  }
  EXPECT_EQ(ring.sessions(), keys.size());
}

TEST(ConsistentHash, OwnerRemapsMinimallyOnLossAndJoin) {
  // The pure ring (no stickiness) has the classic guarantee: on a loss,
  // only the departing shard's keys change owner; on a join, keys only
  // move *to* the newcomer.
  ConsistentHashRing ring;
  for (std::uint32_t s = 0; s < 4; ++s) ring.add_shard(s);
  const std::vector<std::uint64_t> keys = session_keys(1000);
  std::map<std::uint64_t, std::uint32_t> with4;
  for (const std::uint64_t key : keys) with4[key] = ring.owner(key);

  ring.remove_shard(3);
  for (const std::uint64_t key : keys) {
    if (with4[key] != 3) {
      EXPECT_EQ(ring.owner(key), with4[key]) << "key " << key;
    } else {
      EXPECT_NE(ring.owner(key), 3u);
    }
  }

  ring.add_shard(3);  // rejoin: owners must return to the 4-shard map
  for (const std::uint64_t key : keys) {
    EXPECT_EQ(ring.owner(key), with4[key]) << "key " << key;
  }

  ring.add_shard(4);  // a genuine newcomer: keys move only toward it
  long moved = 0;
  for (const std::uint64_t key : keys) {
    const std::uint32_t now = ring.owner(key);
    if (now != with4[key]) {
      EXPECT_EQ(now, 4u) << "key " << key;
      ++moved;
    }
  }
  // ~1/5 of keys should drift to the newcomer; allow a generous band.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 500);
}

TEST(ConsistentHash, DisplacedSessionsReplaceWithinBoundAfterLoss) {
  ConsistentHashRing ring;
  for (std::uint32_t s = 0; s < 3; ++s) ring.add_shard(s);
  const std::vector<std::uint64_t> keys = session_keys(600);
  for (const std::uint64_t key : keys) (void)ring.place(key);
  ring.remove_shard(1);
  for (const std::uint64_t key : keys) (void)ring.place(key);
  EXPECT_EQ(ring.sessions(), keys.size());
  EXPECT_EQ(ring.load(1), 0u);
  EXPECT_LE(ring.load(0), ring.load_bound());
  EXPECT_LE(ring.load(2), ring.load_bound());
  EXPECT_EQ(ring.load(0) + ring.load(2), keys.size());
}

TEST(ConsistentHash, AddShardIsIdempotent) {
  ConsistentHashRing ring;
  ring.add_shard(0);
  ring.add_shard(0);
  EXPECT_EQ(ring.shards().size(), 1u);
  EXPECT_TRUE(ring.contains(0));
  EXPECT_FALSE(ring.contains(1));
}

}  // namespace
}  // namespace scbnn::fleet
