// Cross-implementation integration checks.
//
// The repo contains two independent implementations of the stochastic
// dot-product datapath: the component-level StochasticDotProduct (built
// from Bitstream objects and the generic adder trees) and the packed
// word-parallel StochasticFirstLayer convolution engine. Both simulate the
// same deterministic circuits, so for identical weights and inputs their
// counter outputs must agree BIT-EXACTLY — for the proposed and the
// conventional design alike. This is the strongest internal consistency
// check in the suite: any drift in stream generation, tree reduction
// order, TFF initial-state policy, or padding shows up here.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hybrid/sc_first_layer.h"
#include "nn/quantize.h"
#include "sc/dot_product.h"

namespace scbnn {
namespace {

/// Weights for a single 5x5 kernel with a deterministic pattern.
nn::QuantizedConvWeights make_qweights(unsigned bits, int variant) {
  const int full = 1 << bits;
  nn::QuantizedConvWeights q;
  q.bits = bits;
  q.kernel_size = 5;
  q.in_channels = 1;
  nn::QuantizedKernel k;
  k.scale = 1.0f;
  k.levels.resize(25);
  for (int i = 0; i < 25; ++i) {
    // Mixed-sign levels spanning the range, varying with `variant`.
    const int raw = ((i * 37 + variant * 11) % (2 * full + 1)) - full;
    k.levels[static_cast<std::size_t>(i)] = raw;
  }
  q.kernels.push_back(k);
  return q;
}

/// Pixel levels for one interior window, and the corresponding image.
struct WindowCase {
  std::vector<std::uint32_t> levels;  // 25 taps in ki*5+kj order
  std::vector<float> image;           // 28x28
};

WindowCase make_window(unsigned bits, int variant) {
  const auto full = static_cast<std::uint32_t>(1 << bits);
  WindowCase wc;
  wc.levels.resize(25);
  wc.image.assign(28 * 28, 0.0f);
  // Interior window centered at (14, 14): taps land at rows 12..16.
  for (int ki = 0; ki < 5; ++ki) {
    for (int kj = 0; kj < 5; ++kj) {
      const std::uint32_t level =
          static_cast<std::uint32_t>((ki * 5 + kj) * 7 + variant * 3) %
          (full + 1);
      wc.levels[static_cast<std::size_t>(ki * 5 + kj)] = level;
      wc.image[static_cast<std::size_t>((12 + ki) * 28 + (12 + kj))] =
          static_cast<float>(level) / static_cast<float>(full);
    }
  }
  return wc;
}

class CrossImplementationTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(CrossImplementationTest, ProposedEnginesAgreeOnSign) {
  const auto [bits, variant] = GetParam();
  const auto qw = make_qweights(bits, variant);

  // Component-level path.
  sc::StochasticDotProduct dp(bits, 25, sc::DotProductStyle::kProposed, 1);
  std::vector<int> w(qw.kernels[0].levels.begin(),
                     qw.kernels[0].levels.end());
  dp.set_weights(w);
  const WindowCase wc = make_window(bits, variant);
  const auto component = dp.run(wc.levels);

  // Packed convolution engine, same weights, window at (14, 14).
  hybrid::FirstLayerConfig cfg;
  cfg.bits = bits;
  cfg.seed = 1;
  hybrid::StochasticFirstLayer engine(
      hybrid::StochasticFirstLayer::Style::kProposed, qw, cfg);
  std::vector<float> out(784);
  engine.compute(wc.image.data(), out.data());
  const float engine_sign = out[14 * 28 + 14];

  EXPECT_EQ(static_cast<float>(component.sign), engine_sign)
      << "bits=" << bits << " variant=" << variant
      << " pos=" << component.pos_count << " neg=" << component.neg_count;
}

TEST_P(CrossImplementationTest, ConventionalEnginesAgreeOnSign) {
  const auto [bits, variant] = GetParam();
  const auto qw = make_qweights(bits, variant);

  sc::StochasticDotProduct dp(bits, 25, sc::DotProductStyle::kConventional,
                              1);
  std::vector<int> w(qw.kernels[0].levels.begin(),
                     qw.kernels[0].levels.end());
  dp.set_weights(w);
  const WindowCase wc = make_window(bits, variant);
  const auto component = dp.run(wc.levels);

  hybrid::FirstLayerConfig cfg;
  cfg.bits = bits;
  cfg.seed = 1;
  hybrid::StochasticFirstLayer engine(
      hybrid::StochasticFirstLayer::Style::kConventional, qw, cfg);
  std::vector<float> out(784);
  engine.compute(wc.image.data(), out.data());
  const float engine_sign = out[14 * 28 + 14];

  EXPECT_EQ(static_cast<float>(component.sign), engine_sign)
      << "bits=" << bits << " variant=" << variant;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossImplementationTest,
    ::testing::Combine(::testing::Values(4u, 6u, 8u),
                       ::testing::Values(0, 1, 2, 3)));

TEST(CrossImplementation, CountsMatchExactlyAtEightBit) {
  // Beyond the sign: the raw counter values of both implementations must be
  // identical — the streams and reduction circuits are deterministic.
  const unsigned bits = 8;
  const auto qw = make_qweights(bits, 5);
  sc::StochasticDotProduct dp(bits, 25, sc::DotProductStyle::kProposed, 1);
  std::vector<int> w(qw.kernels[0].levels.begin(),
                     qw.kernels[0].levels.end());
  dp.set_weights(w);
  const WindowCase wc = make_window(bits, 5);
  const auto component = dp.run(wc.levels);

  // Re-derive counts through the engine by evaluating the same window with
  // thresholds that bisect the count difference. Engine exposes only the
  // ternary output, so probe with soft thresholds around the component's
  // value.
  hybrid::FirstLayerConfig tight;
  tight.bits = bits;
  tight.seed = 1;
  const double v = component.value;
  // Threshold just below |v| keeps the sign; just above forces 0.
  if (std::abs(v) > 0.05) {
    hybrid::FirstLayerConfig below = tight, above = tight;
    below.soft_threshold = std::abs(v) * 0.9;
    above.soft_threshold = std::abs(v) * 1.1;
    hybrid::StochasticFirstLayer eb(
        hybrid::StochasticFirstLayer::Style::kProposed, qw, below);
    hybrid::StochasticFirstLayer ea(
        hybrid::StochasticFirstLayer::Style::kProposed, qw, above);
    std::vector<float> ob(784), oa(784);
    eb.compute(wc.image.data(), ob.data());
    ea.compute(wc.image.data(), oa.data());
    EXPECT_EQ(ob[14 * 28 + 14], v > 0 ? 1.0f : -1.0f);
    EXPECT_EQ(oa[14 * 28 + 14], 0.0f);
  }
}

}  // namespace
}  // namespace scbnn
