#include "hybrid/progressive.h"

#include <gtest/gtest.h>

#include "data/synthetic_mnist.h"
#include "hybrid/experiment.h"
#include "nn/quantize.h"

namespace scbnn::hybrid {
namespace {

LeNetConfig tiny_lenet() {
  LeNetConfig cfg;
  cfg.conv1_kernels = 8;
  cfg.conv2_kernels = 8;
  cfg.dense_units = 32;
  cfg.dropout = 0.1f;
  return cfg;
}

/// Build rungs at the given precisions from a shared base model, with
/// tails copied (not retrained — tests only need structural behavior).
std::vector<PrecisionRung> make_rungs(nn::Network& base,
                                      const LeNetConfig& lenet,
                                      std::initializer_list<unsigned> bits) {
  std::vector<PrecisionRung> rungs;
  for (unsigned b : bits) {
    PrecisionRung rung;
    rung.bits = b;
    const auto qw = nn::quantize_conv_weights(base_conv1_weights(base), b);
    FirstLayerConfig flc;
    flc.bits = b;
    flc.soft_threshold = 0.3;
    rung.engine =
        make_first_layer_engine(FirstLayerDesign::kScProposed, qw, flc);
    nn::Rng rng(7);
    rung.tail = build_tail(lenet, rng);
    copy_tail_params(base, rung.tail);
    rungs.push_back(std::move(rung));
  }
  return rungs;
}

class ProgressiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nn::Rng rng(3);
    base_ = build_lenet(tiny_lenet(), rng);
  }
  nn::Network base_;
};

TEST_F(ProgressiveTest, RungOrderingValidated) {
  auto bad = make_rungs(base_, tiny_lenet(), {6u, 3u});
  EXPECT_THROW(ProgressiveClassifier(std::move(bad), 0.5),
               std::invalid_argument);
  EXPECT_THROW(ProgressiveClassifier({}, 0.5), std::invalid_argument);
  auto rungs = make_rungs(base_, tiny_lenet(), {3u});
  EXPECT_THROW(ProgressiveClassifier(std::move(rungs), 1.5),
               std::invalid_argument);
}

TEST_F(ProgressiveTest, ZeroMarginNeverEscalates) {
  ProgressiveClassifier cls(make_rungs(base_, tiny_lenet(), {3u, 6u}), 0.0);
  const nn::Tensor img = data::render_digit(4, 1);
  const auto out = cls.classify(img.data());
  EXPECT_EQ(out.bits_used, 3u);
  EXPECT_DOUBLE_EQ(out.cycles, ProgressiveClassifier::fixed_cycles(3, 8));
}

TEST_F(ProgressiveTest, ImpossibleMarginAlwaysEscalates) {
  ProgressiveClassifier cls(make_rungs(base_, tiny_lenet(), {3u, 6u}), 1.0);
  const nn::Tensor img = data::render_digit(4, 1);
  const auto out = cls.classify(img.data());
  EXPECT_EQ(out.bits_used, 6u);  // fell through to the last rung
  EXPECT_DOUBLE_EQ(out.cycles,
                   ProgressiveClassifier::fixed_cycles(3, 8) +
                       ProgressiveClassifier::fixed_cycles(6, 8));
}

TEST_F(ProgressiveTest, OutcomeFieldsPopulated) {
  ProgressiveClassifier cls(make_rungs(base_, tiny_lenet(), {3u, 6u}), 0.4);
  const nn::Tensor img = data::render_digit(7, 2);
  const auto out = cls.classify(img.data());
  EXPECT_GE(out.predicted, 0);
  EXPECT_LT(out.predicted, 10);
  EXPECT_GE(out.margin, 0.0);
  EXPECT_LE(out.margin, 1.0);
  EXPECT_TRUE(out.bits_used == 3u || out.bits_used == 6u);
}

TEST(Progressive, FixedCyclesFormula) {
  EXPECT_DOUBLE_EQ(ProgressiveClassifier::fixed_cycles(8), 32.0 * 256.0);
  EXPECT_DOUBLE_EQ(ProgressiveClassifier::fixed_cycles(4), 32.0 * 16.0);
  EXPECT_DOUBLE_EQ(ProgressiveClassifier::fixed_cycles(4, 8), 8.0 * 16.0);
}

TEST_F(ProgressiveTest, AverageCyclesBetweenBounds) {
  // With an intermediate margin, average cycles over several images must
  // lie between the cheapest rung alone and the sum of all rungs.
  ProgressiveClassifier cls(make_rungs(base_, tiny_lenet(), {3u, 6u}), 0.35);
  double total = 0.0;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    const nn::Tensor img = data::render_digit(i % 10, 5);
    total += cls.classify(img.data()).cycles;
  }
  const double avg = total / n;
  EXPECT_GE(avg, ProgressiveClassifier::fixed_cycles(3, 8) - 1e-9);
  EXPECT_LE(avg, ProgressiveClassifier::fixed_cycles(3, 8) +
                     ProgressiveClassifier::fixed_cycles(6, 8) + 1e-9);
}

}  // namespace
}  // namespace scbnn::hybrid
