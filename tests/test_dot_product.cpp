#include "sc/dot_product.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>
#include <vector>

namespace scbnn::sc {
namespace {

/// Exact dot product in the engine's normalized units (inputs and weights
/// as fractions of 2^bits).
double exact_value(std::span<const std::uint32_t> x, std::span<const int> w,
                   unsigned bits) {
  const double full = static_cast<double>(1u << bits);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += (static_cast<double>(x[i]) / full) *
           (static_cast<double>(w[i]) / full);
  }
  return acc;
}

TEST(DotProduct, ProposedTracksExactValueAt8Bit) {
  const unsigned bits = 8;
  StochasticDotProduct dp(bits, 25, DotProductStyle::kProposed);
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> wd(-256, 256);
  std::uniform_int_distribution<std::uint32_t> xd(0, 256);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> w(25);
    std::vector<std::uint32_t> x(25);
    for (auto& v : w) v = wd(rng);
    for (auto& v : x) v = xd(rng);
    dp.set_weights(w);
    const auto r = dp.run(x);
    const double exact = exact_value(x, w, bits);
    // Tree rounding: 5 levels x half ULP each on a 256-bit stream, descaled
    // by 32 -> worst case ~0.4; allow slack for multiplier discrepancy.
    EXPECT_NEAR(r.value, exact, 0.9) << "trial " << trial;
  }
}

TEST(DotProduct, ProposedMoreAccurateThanConventional) {
  const unsigned bits = 8;
  StochasticDotProduct proposed(bits, 25, DotProductStyle::kProposed);
  StochasticDotProduct conventional(bits, 25, DotProductStyle::kConventional);
  std::mt19937 rng(17);
  std::uniform_int_distribution<int> wd(-256, 256);
  std::uniform_int_distribution<std::uint32_t> xd(0, 256);
  double err_p = 0.0, err_c = 0.0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<int> w(25);
    std::vector<std::uint32_t> x(25);
    for (auto& v : w) v = wd(rng);
    for (auto& v : x) v = xd(rng);
    proposed.set_weights(w);
    conventional.set_weights(w);
    const double exact = exact_value(x, w, bits);
    err_p += std::pow(proposed.run(x).value - exact, 2);
    err_c += std::pow(conventional.run(x).value - exact, 2);
  }
  EXPECT_LT(err_p, err_c);
}

TEST(DotProduct, SignActivation) {
  const unsigned bits = 6;
  StochasticDotProduct dp(bits, 4, DotProductStyle::kProposed);
  dp.set_weights(std::vector<int>{64, 64, 64, 64});
  const auto pos = dp.run(std::vector<std::uint32_t>{64, 64, 64, 64});
  EXPECT_EQ(pos.sign, 1);
  dp.set_weights(std::vector<int>{-64, -64, -64, -64});
  const auto neg = dp.run(std::vector<std::uint32_t>{64, 64, 64, 64});
  EXPECT_EQ(neg.sign, -1);
  const auto zero = dp.run(std::vector<std::uint32_t>{0, 0, 0, 0});
  EXPECT_EQ(zero.sign, 0);
}

TEST(DotProduct, SoftThresholdCreatesDeadZone) {
  const unsigned bits = 6;
  StochasticDotProduct dp(bits, 4, DotProductStyle::kProposed);
  dp.set_weights(std::vector<int>{8, 0, 0, 0});  // small positive weight
  const std::vector<std::uint32_t> x{64, 0, 0, 0};
  const auto no_thresh = dp.run(x, 0.0);
  const auto with_thresh = dp.run(x, 1.0);
  EXPECT_EQ(no_thresh.sign, 1);
  EXPECT_EQ(with_thresh.sign, 0);  // |value| ~ 0.125 < 1.0 threshold
}

TEST(DotProduct, PosNegSplitMatchesCounts) {
  const unsigned bits = 6;
  StochasticDotProduct dp(bits, 2, DotProductStyle::kProposed);
  dp.set_weights(std::vector<int>{64, -64});  // +1.0 and -1.0 weights
  const auto r = dp.run(std::vector<std::uint32_t>{64, 64});  // x = 1.0
  // Both paths see x*1.0: equal counts, sign 0, value ~ 0.
  EXPECT_EQ(r.pos_count, r.neg_count);
  EXPECT_EQ(r.sign, 0);
  EXPECT_NEAR(r.value, 0.0, 1e-9);
}

TEST(DotProduct, DeterministicAcrossRuns) {
  StochasticDotProduct dp(8, 25, DotProductStyle::kConventional, 5);
  std::vector<int> w(25);
  std::iota(w.begin(), w.end(), -12);
  for (auto& v : w) v *= 20;
  dp.set_weights(w);
  std::vector<std::uint32_t> x(25, 100);
  const auto a = dp.run(x);
  const auto b = dp.run(x);
  EXPECT_EQ(a.pos_count, b.pos_count);
  EXPECT_EQ(a.neg_count, b.neg_count);
  EXPECT_EQ(a.sign, b.sign);
}

TEST(DotProduct, Validation) {
  EXPECT_THROW(StochasticDotProduct(1, 4, DotProductStyle::kProposed),
               std::invalid_argument);
  EXPECT_THROW(StochasticDotProduct(8, 0, DotProductStyle::kProposed),
               std::invalid_argument);
  StochasticDotProduct dp(6, 4, DotProductStyle::kProposed);
  EXPECT_THROW(dp.set_weights(std::vector<int>{1, 2}), std::invalid_argument);
  EXPECT_THROW(dp.set_weights(std::vector<int>{999, 0, 0, 0}),
               std::invalid_argument);
  dp.set_weights(std::vector<int>{1, 2, 3, 4});
  EXPECT_THROW((void)dp.run(std::vector<std::uint32_t>{1, 2}),
               std::invalid_argument);
  EXPECT_THROW((void)dp.run(std::vector<std::uint32_t>{999, 0, 0, 0}),
               std::invalid_argument);
}

TEST(DotProduct, RunBeforeWeightsThrows) {
  StochasticDotProduct dp(6, 4, DotProductStyle::kProposed);
  EXPECT_THROW((void)dp.run(std::vector<std::uint32_t>{1, 2, 3, 4}),
               std::logic_error);
}

TEST(DotProduct, DescaleMatchesTreeGeometry) {
  StochasticDotProduct dp25(8, 25, DotProductStyle::kProposed);
  EXPECT_DOUBLE_EQ(dp25.descale(), 32.0);
  StochasticDotProduct dp4(8, 4, DotProductStyle::kProposed);
  EXPECT_DOUBLE_EQ(dp4.descale(), 4.0);
}

class DotProductPrecisionTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DotProductPrecisionTest, ErrorGrowsAsPrecisionShrinks) {
  const unsigned bits = GetParam();
  StochasticDotProduct dp(bits, 9, DotProductStyle::kProposed);
  const int full = 1 << bits;
  std::mt19937 rng(bits);
  std::uniform_int_distribution<int> wd(-full, full);
  std::uniform_int_distribution<std::uint32_t> xd(0, full);
  double sq = 0.0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> w(9);
    std::vector<std::uint32_t> x(9);
    for (auto& v : w) v = wd(rng);
    for (auto& v : x) v = xd(rng);
    dp.set_weights(w);
    sq += std::pow(dp.run(x).value - exact_value(x, w, bits), 2);
  }
  // Tree descale is 16 for 9 inputs; per-node rounding is half an output
  // ULP, so rms error is bounded by ~16*levels/(2*2^bits) in value units.
  const double bound = 16.0 * 4.0 / static_cast<double>(1 << bits);
  EXPECT_LE(std::sqrt(sq / 30.0), bound) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Bits, DotProductPrecisionTest,
                         ::testing::Values(4u, 6u, 8u, 10u));

}  // namespace
}  // namespace scbnn::sc
