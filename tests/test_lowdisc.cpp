#include "sc/lowdisc.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

namespace scbnn::sc {
namespace {

TEST(VanDerCorput, IsPermutationPerPeriod) {
  VanDerCorputSource src(6);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(seen.insert(src.next()).second);
  }
  EXPECT_EQ(seen.size(), 64u);
  // Wraps cleanly into a second identical period.
  EXPECT_EQ(src.next(), 0u);
}

TEST(VanDerCorput, FirstValuesMatchBitReversal) {
  VanDerCorputSource src(3);
  // counter 0,1,2,3 -> reversed: 0, 4, 2, 6
  EXPECT_EQ(src.next(), 0u);
  EXPECT_EQ(src.next(), 4u);
  EXPECT_EQ(src.next(), 2u);
  EXPECT_EQ(src.next(), 6u);
}

TEST(VanDerCorput, EvenSpreadProperty) {
  // In any prefix of length m, the count of values < B deviates from
  // m*B/N by at most O(log N) — check a loose bound of log2(N)+1.
  const unsigned bits = 8;
  const std::uint32_t n = 256;
  VanDerCorputSource src(bits);
  std::vector<std::uint32_t> seq(n);
  for (auto& v : seq) v = src.next();
  const std::uint32_t b = 100;
  double count = 0;
  for (std::uint32_t m = 1; m <= n; ++m) {
    if (seq[m - 1] < b) count += 1;
    const double expected = static_cast<double>(m) * b / n;
    EXPECT_LE(std::abs(count - expected), 9.0) << "prefix " << m;
  }
}

TEST(Sobol, SecondDimensionIsPermutation) {
  SobolDim2Source src(6);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t v = src.next();
    ASSERT_LT(v, 64u);
    EXPECT_TRUE(seen.insert(v).second);
  }
}

TEST(Sobol, ResetRestartsSequence) {
  SobolDim2Source src(8);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 20; ++i) first.push_back(src.next());
  src.reset();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(src.next(), first[i]);
}

TEST(Sobol, DiffersFromVanDerCorput) {
  VanDerCorputSource vdc(8);
  SobolDim2Source sobol(8);
  int diffs = 0;
  for (int i = 0; i < 64; ++i) {
    if (vdc.next() != sobol.next()) ++diffs;
  }
  EXPECT_GT(diffs, 32);
}

TEST(Halton, ValuesInRange) {
  HaltonBase3Source src(8);
  for (int i = 0; i < 512; ++i) {
    EXPECT_LT(src.next(), 256u);
  }
}

TEST(Halton, ApproximatelyUniform) {
  HaltonBase3Source src(8);
  const int n = 3 * 3 * 3 * 3 * 3 * 3;  // full base-3 stratification depth
  int below_half = 0;
  for (int i = 0; i < n; ++i) {
    if (src.next() < 128) ++below_half;
  }
  EXPECT_NEAR(static_cast<double>(below_half) / n, 0.5, 0.02);
}

TEST(LowDisc, WidthValidation) {
  EXPECT_THROW(VanDerCorputSource(0), std::invalid_argument);
  EXPECT_THROW(VanDerCorputSource(32), std::invalid_argument);
  EXPECT_THROW(SobolDim2Source(0), std::invalid_argument);
  EXPECT_THROW(HaltonBase3Source(0), std::invalid_argument);
}

}  // namespace
}  // namespace scbnn::sc
