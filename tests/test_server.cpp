// Request-level serving core tests: bit identity between Server-coalesced
// requests and direct Servable batch calls (both backends, several thread
// counts), max_delay_us expiry dispatching partial batches, reject-not-block
// admission control, drained graceful shutdown, and per-request accounting.
#include "runtime/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "data/synthetic_mnist.h"
#include "hybrid/experiment.h"
#include "hybrid/hybrid_network.h"
#include "nn/init.h"
#include "nn/quantize.h"
#include "runtime/adaptive_pipeline.h"
#include "runtime/inference_engine.h"

namespace scbnn::runtime {
namespace {

constexpr std::size_t kPixels =
    static_cast<std::size_t>(hybrid::kImageSize) * hybrid::kImageSize;

hybrid::LeNetConfig tiny_lenet() {
  hybrid::LeNetConfig cfg;
  cfg.conv1_kernels = 8;
  cfg.conv2_kernels = 8;
  cfg.dense_units = 32;
  cfg.dropout = 0.0f;
  return cfg;
}

/// Fixed-precision Servable: engine + tail from a shared deterministic base
/// model. Two calls with the same threads argument build bit-identical
/// backends.
std::unique_ptr<InferenceEngine> make_engine_backend(unsigned threads) {
  nn::Rng base_rng(3);
  nn::Network base = hybrid::build_lenet(tiny_lenet(), base_rng);
  const auto qw =
      nn::quantize_conv_weights(hybrid::base_conv1_weights(base), 4);
  hybrid::FirstLayerConfig flc;
  flc.bits = 4;
  flc.soft_threshold = 0.3;
  RuntimeConfig rc;
  rc.threads = threads;
  rc.chunk_images = 3;
  auto engine =
      std::make_unique<InferenceEngine>("sc-proposed", qw, flc, rc);
  nn::Rng tail_rng(7);
  nn::Network tail = hybrid::build_tail(tiny_lenet(), tail_rng);
  hybrid::copy_tail_params(base, tail);
  engine->set_tail(std::move(tail));
  return engine;
}

/// Two-rung adaptive Servable from the same deterministic base model.
std::unique_ptr<AdaptivePipeline> make_adaptive_backend(unsigned threads) {
  nn::Rng base_rng(3);
  nn::Network base = hybrid::build_lenet(tiny_lenet(), base_rng);
  std::vector<AdaptiveRung> rungs;
  for (unsigned bits : {3u, 6u}) {
    AdaptiveRung rung;
    rung.bits = bits;
    const auto qw =
        nn::quantize_conv_weights(hybrid::base_conv1_weights(base), bits);
    hybrid::FirstLayerConfig flc;
    flc.bits = bits;
    flc.soft_threshold = 0.3;
    rung.engine = hybrid::make_first_layer_engine(
        hybrid::FirstLayerDesign::kScProposed, qw, flc);
    nn::Rng tail_rng(7);
    rung.tail = hybrid::build_tail(tiny_lenet(), tail_rng);
    hybrid::copy_tail_params(base, rung.tail);
    rungs.push_back(std::move(rung));
  }
  RuntimeConfig rc;
  rc.threads = threads;
  rc.chunk_images = 3;
  return std::make_unique<AdaptivePipeline>(std::move(rungs), 0.5, rc);
}

/// Test double that parks inside classify() until released, so tests can
/// pin the batch former mid-dispatch and probe queue admission.
class BlockingServable : public Servable {
 public:
  ServeStats classify(const float* /*images*/, int n,
                      Prediction* out) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++entered_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    }
    for (int i = 0; i < n; ++i) {
      out[i] = Prediction{};
      out[i].label = 1;
    }
    ServeStats stats;
    stats.images = n;
    return stats;
  }
  [[nodiscard]] std::string name() const override { return "blocking"; }
  [[nodiscard]] unsigned threads() const noexcept override { return 1; }

  void wait_until_entered(int times) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this, times] { return entered_ >= times; });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool released_ = false;
};

class ThrowingServable : public Servable {
 public:
  ServeStats classify(const float*, int, Prediction*) override {
    throw std::runtime_error("backend exploded");
  }
  [[nodiscard]] std::string name() const override { return "throwing"; }
  [[nodiscard]] unsigned threads() const noexcept override { return 1; }
};

std::vector<std::future<Prediction>> submit_all(Server& server,
                                                const nn::Tensor& images) {
  std::vector<std::future<Prediction>> futures;
  for (int i = 0; i < images.dim(0); ++i) {
    futures.push_back(server.submit(images.data() +
                                    static_cast<std::size_t>(i) * kPixels));
  }
  return futures;
}

// ----------------------------------------------------------- ServerConfig

TEST(ServerConfig, ValidateRejectsNonsense) {
  EXPECT_NO_THROW(ServerConfig{}.validate());
  ServerConfig cfg;
  cfg.max_batch = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.max_batch = 4;
  cfg.max_delay_us = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.max_delay_us = 0;  // "dispatch immediately" is a valid policy
  EXPECT_NO_THROW(cfg.validate());
  cfg.max_delay_us = ServerConfig::kMaxDelayUs;  // at the cap is still fine
  EXPECT_NO_THROW(cfg.validate());
  cfg.max_delay_us = ServerConfig::kMaxDelayUs + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.max_delay_us = 0;
  cfg.queue_capacity = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // A batch that can never fill (bigger than the whole queue) is rejected:
  // the size trigger would be dead and every dispatch would wait out the
  // full delay under saturation.
  cfg.queue_capacity = 8;
  cfg.max_batch = 9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.max_batch = 8;  // exactly the capacity is fine
  EXPECT_NO_THROW(cfg.validate());
}

// ------------------------------------------------------------ RequestQueue

TEST(RequestQueue, RejectsWhenFullAndAfterClose) {
  RequestQueue queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  queue.push(Request{});
  queue.push(Request{});
  EXPECT_THROW(queue.push(Request{}), QueueFullError);
  EXPECT_EQ(queue.size(), 2u);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_THROW(queue.push(Request{}), std::runtime_error);
}

TEST(RequestQueue, PopBatchDrainsAfterClose) {
  RequestQueue queue(8);
  queue.push(Request{});
  queue.push(Request{});
  queue.push(Request{});
  queue.close();
  // Closed queue dispatches the backlog without waiting for max_delay.
  auto batch = queue.pop_batch(2, std::chrono::microseconds(60'000'000));
  EXPECT_EQ(batch.size(), 2u);
  batch = queue.pop_batch(2, std::chrono::microseconds(60'000'000));
  EXPECT_EQ(batch.size(), 1u);
  // Closed and drained: the consumer's exit signal.
  EXPECT_TRUE(queue.pop_batch(2, std::chrono::microseconds(0)).empty());
}

// ------------------------------------------------- bit-identity (criterion a)

TEST(Server, EnginePredictionsBitIdenticalToDirectClassify) {
  const data::DataSplit split = data::generate_synthetic_mnist(13, 1, 23);
  for (unsigned threads : {1u, 3u}) {
    const auto backend = make_engine_backend(threads);
    const std::vector<Prediction> direct =
        backend->Servable::classify(split.train.images);

    // Two coalescing regimes: singleton batches and dense micro-batches.
    for (int max_batch : {1, 5}) {
      const auto fresh = make_engine_backend(threads);
      ServerConfig cfg;
      cfg.max_batch = max_batch;
      cfg.max_delay_us = 300;
      Server server(*fresh, cfg);
      auto futures = submit_all(server, split.train.images);
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const Prediction got = futures[i].get();
        EXPECT_EQ(got.label, direct[i].label) << "image " << i;
        EXPECT_EQ(got.margin, direct[i].margin) << "image " << i;
        EXPECT_EQ(got.bits_used, direct[i].bits_used);
        EXPECT_EQ(got.rung, direct[i].rung);
      }
    }
  }
}

TEST(Server, AdaptivePredictionsBitIdenticalToDirectClassify) {
  const data::DataSplit split = data::generate_synthetic_mnist(11, 1, 29);
  for (unsigned threads : {1u, 2u}) {
    const auto backend = make_adaptive_backend(threads);
    const std::vector<Prediction> direct =
        backend->Servable::classify(split.train.images);

    for (int max_batch : {1, 4}) {
      const auto fresh = make_adaptive_backend(threads);
      ServerConfig cfg;
      cfg.max_batch = max_batch;
      cfg.max_delay_us = 300;
      Server server(*fresh, cfg);
      auto futures = submit_all(server, split.train.images);
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const Prediction got = futures[i].get();
        EXPECT_EQ(got.label, direct[i].label) << "image " << i;
        EXPECT_EQ(got.margin, direct[i].margin) << "image " << i;
        EXPECT_EQ(got.rung, direct[i].rung) << "image " << i;
        EXPECT_EQ(got.bits_used, direct[i].bits_used) << "image " << i;
      }
    }
  }
}

// ------------------------------------------- delay expiry (criterion b)

TEST(Server, DelayExpiryDispatchesPartialBatches) {
  const data::DataSplit split = data::generate_synthetic_mnist(3, 1, 31);
  const auto backend = make_engine_backend(1);
  ServerConfig cfg;
  cfg.max_batch = 64;  // far more than we will ever submit
  cfg.max_delay_us = 1000;
  Server server(*backend, cfg);
  auto futures = submit_all(server, split.train.images);
  for (auto& f : futures) {
    const Prediction p = f.get();  // resolves only because the delay expired
    EXPECT_GE(p.batch_size, 1);
    EXPECT_LE(p.batch_size, 3);
    EXPECT_GE(p.queue_wait_ms, 0.0);
    EXPECT_GT(p.compute_ms, 0.0);
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_GE(stats.batches, 1);
  EXPECT_EQ(stats.batch_histogram[64], 0);  // no full batch ever formed
  long histogram_total = 0;
  for (long count : stats.batch_histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, stats.batches);
}

// ------------------------------------------- admission control (criterion c)

TEST(Server, FullQueueRejectsInsteadOfBlocking) {
  BlockingServable backend;
  ServerConfig cfg;
  cfg.max_batch = 1;
  cfg.max_delay_us = 0;
  cfg.queue_capacity = 2;
  Server server(backend, cfg);
  const std::vector<float> frame(kPixels, 0.5f);

  // First request is popped and pins the batch former inside classify().
  auto pinned = server.submit(frame.data());
  backend.wait_until_entered(1);
  // Now the queue itself can hold exactly two more.
  auto queued1 = server.submit(frame.data());
  auto queued2 = server.submit(frame.data());
  EXPECT_THROW((void)server.submit(frame.data()), QueueFullError);
  // Burst admission is all-or-nothing against the same bound.
  EXPECT_THROW((void)server.submit_burst(frame.data(), 1), QueueFullError);
  EXPECT_EQ(server.stats().rejected, 2);

  backend.release();
  EXPECT_EQ(pinned.get().label, 1);
  EXPECT_EQ(queued1.get().label, 1);
  EXPECT_EQ(queued2.get().label, 1);
}

TEST(Server, BurstIsAllOrNothing) {
  BlockingServable backend;
  ServerConfig cfg;
  cfg.max_batch = 1;
  cfg.max_delay_us = 0;
  cfg.queue_capacity = 3;
  Server server(backend, cfg);
  const std::vector<float> frames(4 * kPixels, 0.5f);

  auto pinned = server.submit(frames.data());
  backend.wait_until_entered(1);
  // 3 fit exactly; a burst of 4 would have been rejected wholesale.
  EXPECT_THROW((void)server.submit_burst(frames.data(), 4), QueueFullError);
  auto futures = server.submit_burst(frames.data(), 3);
  EXPECT_EQ(futures.size(), 3u);

  backend.release();
  for (auto& f : futures) EXPECT_EQ(f.get().label, 1);
  (void)pinned.get();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 4);
  EXPECT_EQ(stats.accepted, 4);
}

// --------------------------------------------- graceful shutdown (criterion d)

TEST(Server, ShutdownDrainsInFlightFutures) {
  const data::DataSplit split = data::generate_synthetic_mnist(10, 1, 37);
  const auto backend = make_engine_backend(2);
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_us = 50'000;  // long delay: shutdown must not wait it out
  Server server(*backend, cfg);
  auto futures = submit_all(server, split.train.images);
  server.shutdown();
  // Every outstanding future resolved during shutdown — none left pending.
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_GE(f.get().label, 0);
  }
  EXPECT_EQ(server.stats().completed, 10);
  // The server no longer admits work, with a clear error.
  EXPECT_THROW((void)server.submit(split.train.images.data()),
               std::runtime_error);
  // shutdown() is idempotent (the destructor will call it again too).
  server.shutdown();
}

// ----------------------------------------------------- failure propagation

TEST(Server, BackendExceptionReachesEveryFutureInTheBatch) {
  ThrowingServable backend;
  ServerConfig cfg;
  cfg.max_batch = 2;
  cfg.max_delay_us = 100;
  Server server(backend, cfg);
  const std::vector<float> frame(kPixels, 0.5f);
  auto f1 = server.submit(frame.data());
  auto f2 = server.submit(frame.data());
  EXPECT_THROW((void)f1.get(), std::runtime_error);
  EXPECT_THROW((void)f2.get(), std::runtime_error);
  server.shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.failed, 2);
  EXPECT_EQ(stats.completed, 0);
}

}  // namespace
}  // namespace scbnn::runtime
