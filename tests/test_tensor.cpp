#include "nn/tensor.h"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <vector>

namespace scbnn::nn {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.shape_string(), "[2, 3, 4]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({4, 4});
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillAndFull) {
  Tensor t = Tensor::full({3}, 2.5f);
  EXPECT_EQ(t[0], 2.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[2], -1.0f);
}

TEST(Tensor, At2RowMajor) {
  Tensor t({2, 3});
  t.at2(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
}

TEST(Tensor, At4Layout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  t[7] = 3.0f;
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.shape(), (std::vector<int>{3, 4}));
  EXPECT_EQ(r[7], 3.0f);
}

TEST(Tensor, ReshapeRejectsSizeMismatch) {
  Tensor t({2, 6});
  EXPECT_THROW((void)t.reshaped({5}), std::invalid_argument);
}

TEST(Tensor, RejectsNonPositiveDims) {
  EXPECT_THROW(Tensor({2, 0}), std::invalid_argument);
  EXPECT_THROW(Tensor({-1}), std::invalid_argument);
}

void naive_gemm(const std::vector<float>& a, const std::vector<float>& b,
                std::vector<float>& c, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
      c[i * n + j] = acc;
    }
  }
}

class GemmTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmTest, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  std::mt19937 rng(m * 100 + k * 10 + n);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  std::vector<float> a(m * k), b(k * n), expect(m * n), got(m * n);
  for (auto& v : a) v = d(rng);
  for (auto& v : b) v = d(rng);
  naive_gemm(a, b, expect, m, k, n);

  gemm(a.data(), b.data(), got.data(), m, k, n);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(got[i], expect[i], 1e-4f);

  // A^T variant: pass a laid out as [k, m].
  std::vector<float> at(k * m);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) at[p * m + i] = a[i * k + p];
  }
  std::fill(got.begin(), got.end(), 0.0f);
  gemm_at(at.data(), b.data(), got.data(), m, k, n);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(got[i], expect[i], 1e-4f);

  // B^T variant: pass b laid out as [n, k].
  std::vector<float> bt(n * k);
  for (int p = 0; p < k; ++p) {
    for (int j = 0; j < n; ++j) bt[j * k + p] = b[p * n + j];
  }
  std::fill(got.begin(), got.end(), 0.0f);
  gemm_bt(a.data(), bt.data(), got.data(), m, k, n);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(got[i], expect[i], 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmTest,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(3, 4, 5),
                                           std::make_tuple(8, 8, 8),
                                           std::make_tuple(17, 5, 3),
                                           std::make_tuple(2, 32, 64)));

TEST(Gemm, AccumulateAddsToExisting) {
  std::vector<float> a{1.0f, 2.0f}, b{3.0f, 4.0f};
  std::vector<float> c{10.0f};
  gemm(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/true);
  EXPECT_NEAR(c[0], 10.0f + 1.0f * 3.0f + 2.0f * 4.0f, 1e-5f);
}

}  // namespace
}  // namespace scbnn::nn
