#include "sc/counter.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace scbnn::sc {
namespace {

TEST(ToBinary, CountsOnes) {
  EXPECT_EQ(to_binary(Bitstream::from_string("0110 1011")), 5u);
  EXPECT_EQ(to_binary(Bitstream(16)), 0u);
  EXPECT_EQ(to_binary(Bitstream::constant(16, true)), 16u);
}

TEST(AsyncCounter, CountsAtFastClock) {
  // SC clock period 2 ns (500 MHz), stage delay 1.5 ns: a synchronous
  // counter would need 8 * 1.5 = 12 ns to settle, but the ripple counter
  // keeps up because only its first stage must react per pulse.
  const Bitstream s = Bitstream::constant(200, true);
  EXPECT_EQ(run_async_counter(s, 8, 1.5, 2.0), 200u);
}

TEST(AsyncCounter, IgnoresZeroBits) {
  const Bitstream s = Bitstream::from_string("0101 0101");
  EXPECT_EQ(run_async_counter(s, 8, 1.5, 2.0), 4u);
}

TEST(SyncCounter, DropsPulsesWhenClockOutpacesCarryChain) {
  // Same conditions: the sync counter loses pulses (Section II.A's
  // motivation for asynchronous stochastic-to-binary conversion).
  const Bitstream s = Bitstream::constant(200, true);
  const std::uint64_t counted = run_sync_counter(s, 8, 1.5, 2.0);
  EXPECT_LT(counted, 200u);
}

TEST(SyncCounter, AccurateWhenClockIsSlowEnough) {
  const Bitstream s = Bitstream::constant(100, true);
  // Period 16 ns >= 8 stages * 1.5 ns settle time.
  EXPECT_EQ(run_sync_counter(s, 8, 1.5, 16.0), 100u);
}

TEST(SyncCounter, TracksDropCount) {
  SyncCounter c(8, 1.5);
  for (int i = 0; i < 10; ++i) {
    c.pulse(static_cast<double>(i) * 2.0, true);
  }
  EXPECT_EQ(c.count() + c.dropped(), 10u);
  EXPECT_GT(c.dropped(), 0u);
}

TEST(AsyncCounter, SettleLatencyScalesWithWidth) {
  AsyncRippleCounter narrow(4, 1.5);
  AsyncRippleCounter wide(12, 1.5);
  EXPECT_DOUBLE_EQ(narrow.settle_latency_ns(), 6.0);
  EXPECT_DOUBLE_EQ(wide.settle_latency_ns(), 18.0);
}

TEST(AsyncCounter, WrapsAtWidth) {
  AsyncRippleCounter c(3, 0.1);
  for (int i = 0; i < 10; ++i) {
    c.pulse(static_cast<double>(i) * 10.0, true);
  }
  EXPECT_EQ(c.settled_count(), 10u % 8u);
}

TEST(Counters, WidthValidation) {
  EXPECT_THROW(AsyncRippleCounter(0, 1.0), std::invalid_argument);
  EXPECT_THROW(AsyncRippleCounter(64, 1.0), std::invalid_argument);
  EXPECT_THROW(SyncCounter(0, 1.0), std::invalid_argument);
}

TEST(Counters, AsyncBeatsSyncAtPaperOperatingPoint) {
  // End-to-end comparison at the paper's operating point: converting the
  // output of an 8-bit dot product (up to 256 ones in 256 cycles at
  // 500 MHz) must be exact for async, lossy for sync.
  const Bitstream root = Bitstream::prefix_ones(256, 180);
  const std::uint64_t async_count = run_async_counter(root, 9, 1.2, 2.0);
  const std::uint64_t sync_count = run_sync_counter(root, 9, 1.2, 2.0);
  EXPECT_EQ(async_count, 180u);
  EXPECT_LT(sync_count, 180u);
}

}  // namespace
}  // namespace scbnn::sc
