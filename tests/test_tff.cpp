// Tests for the paper's core contribution: the TFF-based stochastic adder
// (Section III, Fig. 2). The central invariant, verified exhaustively and
// randomly below:
//   ones(Z) = floor((ones(X) + ones(Y)) / 2)  when S0 = 0
//   ones(Z) = ceil ((ones(X) + ones(Y)) / 2)  when S0 = 1
// independent of the bit ORDER of X and Y (auto-correlation immunity).
#include "sc/tff.h"

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "sc/correlation.h"
#include "sc/sng.h"

namespace scbnn::sc {
namespace {

Bitstream random_stream(std::size_t n, double p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution bit(p);
  Bitstream s(n);
  for (std::size_t i = 0; i < n; ++i) s.set_bit(i, bit(rng));
  return s;
}

TEST(ToggleFlipFlop, TogglesOnlyOnOne) {
  ToggleFlipFlop tff(false);
  EXPECT_FALSE(tff.clock(false));
  EXPECT_FALSE(tff.q());
  EXPECT_FALSE(tff.clock(true));  // outputs pre-toggle state
  EXPECT_TRUE(tff.q());
  EXPECT_TRUE(tff.clock(true));
  EXPECT_FALSE(tff.q());
  tff.reset(true);
  EXPECT_TRUE(tff.q());
}

TEST(TffHalve, PaperFig2aSemantics) {
  // Every other 1 of the input passes through.
  const Bitstream a = Bitstream::from_string("1111");
  EXPECT_EQ(tff_halve(a, false).to_string(), "0101");
  EXPECT_EQ(tff_halve(a, true).to_string(), "1010");
}

class TffHalveCountTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(TffHalveCountTest, ExactHalvingWithRounding) {
  const auto [n, seed] = GetParam();
  for (double p : {0.1, 0.5, 0.9}) {
    const Bitstream a = random_stream(n, p, static_cast<std::uint64_t>(seed));
    const std::size_t ones = a.count_ones();
    EXPECT_EQ(tff_halve(a, false).count_ones(), ones / 2);
    EXPECT_EQ(tff_halve(a, true).count_ones(), (ones + 1) / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TffHalveCountTest,
    ::testing::Combine(::testing::Values(8u, 63u, 64u, 65u, 256u, 1000u),
                       ::testing::Values(1, 2, 3)));

TEST(TffAdd, PaperFig2bWorkedExample) {
  const auto x = Bitstream::from_string("0110 0011 0101 0111 1000");  // 10/20
  const auto y = Bitstream::from_string("1011 1111 0101 0111 1111");  // 16/20
  const Bitstream z = tff_add(x, y, false);
  // Expected result 0.5*(10/20 + 16/20) = 13/20.
  EXPECT_EQ(z.count_ones(), 13u);
  EXPECT_EQ(z.to_string(), "01101011010101111101");
}

TEST(TffAdd, PaperFig2cInitialStateControlsRounding) {
  const auto x = Bitstream::from_string("0100 1010");  // 3/8
  const auto y = Bitstream::from_string("0010 0010");  // 2/8
  // Exact sum 5/16 is not representable in 8 bits: S0 picks the neighbor.
  const Bitstream z0 = tff_add(x, y, false);
  const Bitstream z1 = tff_add(x, y, true);
  EXPECT_EQ(z0.to_string(), "00100010");  // rounds down to 2/8
  EXPECT_EQ(z1.to_string(), "01001010");  // rounds up to 3/8
  EXPECT_EQ(z0.count_ones(), 2u);
  EXPECT_EQ(z1.count_ones(), 3u);
}

TEST(TffAdd, SerialAndPackedAgreeOnExamples) {
  const auto x = Bitstream::from_string("0110 0011 0101 0111 1000");
  const auto y = Bitstream::from_string("1011 1111 0101 0111 1111");
  EXPECT_EQ(tff_add(x, y, false), tff_add_serial(x, y, false));
  EXPECT_EQ(tff_add(x, y, true), tff_add_serial(x, y, true));
}

class TffAddPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(TffAddPropertyTest, ExactScaledSumWithRounding) {
  const auto [n, seed] = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 977 + n);
  for (int trial = 0; trial < 8; ++trial) {
    const Bitstream x = random_stream(n, 0.125 * (trial + 1), rng());
    const Bitstream y = random_stream(n, 1.0 - 0.1 * trial, rng());
    const std::size_t sum = x.count_ones() + y.count_ones();
    EXPECT_EQ(tff_add(x, y, false).count_ones(), sum / 2);
    EXPECT_EQ(tff_add(x, y, true).count_ones(), (sum + 1) / 2);
  }
}

TEST_P(TffAddPropertyTest, PackedMatchesSerialBitExactly) {
  const auto [n, seed] = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 31 + n);
  for (int trial = 0; trial < 4; ++trial) {
    const Bitstream x = random_stream(n, 0.4, rng());
    const Bitstream y = random_stream(n, 0.7, rng());
    EXPECT_EQ(tff_add(x, y, false), tff_add_serial(x, y, false));
    EXPECT_EQ(tff_add(x, y, true), tff_add_serial(x, y, true));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TffAddPropertyTest,
    ::testing::Combine(::testing::Values(1u, 7u, 63u, 64u, 65u, 128u, 200u,
                                         1024u),
                       ::testing::Values(1, 2, 3)));

TEST(TffAdd, ExhaustiveSmallStreams) {
  // Every pair of 6-bit streams: 4096 combinations, checked bit-exactly
  // against the serial reference and the counting invariant.
  for (std::uint32_t xa = 0; xa < 64; ++xa) {
    for (std::uint32_t ya = 0; ya < 64; ++ya) {
      Bitstream x(6), y(6);
      for (unsigned i = 0; i < 6; ++i) {
        x.set_bit(i, (xa >> i) & 1u);
        y.set_bit(i, (ya >> i) & 1u);
      }
      const std::size_t sum = x.count_ones() + y.count_ones();
      const Bitstream z = tff_add(x, y, false);
      ASSERT_EQ(z, tff_add_serial(x, y, false));
      ASSERT_EQ(z.count_ones(), sum / 2);
    }
  }
}

TEST(TffAdd, InsensitiveToAutoCorrelation) {
  // The same value pair encoded with maximal auto-correlation (prefix-ones,
  // the ramp converter's output) and with an anti-correlated layout must
  // give identical counts — the property that lets the paper feed the adder
  // straight from the sensor converter.
  const std::size_t n = 64;
  const Bitstream x_ramp = Bitstream::prefix_ones(n, 30);
  const Bitstream y_ramp = Bitstream::prefix_ones(n, 17);
  Bitstream x_alt(n), y_alt(n);
  for (std::size_t i = 0; i < 30; ++i) x_alt.set_bit(n - 1 - i, true);
  for (std::size_t i = 0; i < 17; ++i) y_alt.set_bit(2 * i, true);
  EXPECT_GT(autocorrelation(x_ramp, 1), 0.8);  // confirm heavy correlation
  EXPECT_EQ(tff_add(x_ramp, y_ramp, false).count_ones(), (30u + 17u) / 2);
  EXPECT_EQ(tff_add(x_alt, y_alt, false).count_ones(), (30u + 17u) / 2);
}

TEST(TffAdd, ErrorBoundedByHalfUlp) {
  // |pZ - (pX+pY)/2| <= 1/(2N) always.
  std::mt19937_64 rng(99);
  const std::size_t n = 128;
  for (int trial = 0; trial < 50; ++trial) {
    const Bitstream x = random_stream(n, 0.3, rng());
    const Bitstream y = random_stream(n, 0.6, rng());
    const double expected = 0.5 * (x.unipolar() + y.unipolar());
    const double got = tff_add(x, y, false).unipolar();
    EXPECT_LE(std::abs(got - expected), 0.5 / n + 1e-12);
  }
}

TEST(TffAdd, RejectsLengthMismatch) {
  EXPECT_THROW((void)tff_add(Bitstream(8), Bitstream(9), false),
               std::invalid_argument);
  EXPECT_THROW((void)tff_add_serial(Bitstream(8), Bitstream(9), false),
               std::invalid_argument);
}

TEST(TffAddWords, ReturnsFinalState) {
  // Final TFF state = s0 XOR parity(total mismatches).
  const Bitstream x = Bitstream::from_string("1100");
  const Bitstream y = Bitstream::from_string("1010");  // 2 mismatches
  Bitstream z(4);
  EXPECT_FALSE(tff_add_words(x.words().data(), y.words().data(),
                             z.words().data(), 1, false));
  const Bitstream y2 = Bitstream::from_string("1000");  // 1 mismatch
  EXPECT_TRUE(tff_add_words(x.words().data(), y2.words().data(),
                            z.words().data(), 1, false));
}

TEST(TffHalve, UncorrelatedWithInput) {
  // Fig. 2a claim: the TFF-generated half-rate stream is uncorrelated with
  // its own input, so the AND truly multiplies by 1/2 even for the
  // worst-case auto-correlated input.
  const Bitstream ramp = Bitstream::prefix_ones(256, 200);
  const Bitstream halved = tff_halve(ramp, false);
  EXPECT_EQ(halved.count_ones(), 100u);
}

}  // namespace
}  // namespace scbnn::sc
