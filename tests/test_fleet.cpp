// Fleet coordinator integration tests: real fork()ed shard processes over
// real shared-memory rings. Covered here: bit-identity of fleet predictions
// vs an in-process Servable from the same bundle, kill -9 recovery (respawn
// + ring-tail replay) under the 250 ms budget, per-tenant admission quotas,
// hard-deadline SLO drops, and graceful shutdown with futures resolved.
//
// Skipped under ThreadSanitizer: TSan does not support fork() from a
// multi-threaded process (the coordinator runs collector + supervisor
// threads). The transport's sanitizer coverage lives in test_shm_ring.cpp,
// which drives the same ring code with in-process threads.
#include "fleet/coordinator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hybrid/bundle.h"
#include "obs/trace.h"
#include "hybrid/hybrid_network.h"
#include "nn/init.h"
#include "nn/quantize.h"
#include "nn/tensor.h"
#include "runtime/servable.h"
#include "sensor/session_driver.h"

#if defined(__SANITIZE_THREAD__)
#define SCBNN_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SCBNN_TSAN 1
#endif
#endif

#ifdef SCBNN_TSAN
#define SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "fork()-based fleet tests are unsupported under TSan"
#else
#define SKIP_UNDER_TSAN() (void)0
#endif

namespace scbnn::fleet {
namespace {

constexpr std::uint64_t kSeed = 7;

/// A tiny deterministic frozen-weight bundle (no training), saved once per
/// test binary run — the artifact every shard and the in-process reference
/// instantiate from.
std::string frozen_bundle_path() {
  static const std::string path = [] {
    const hybrid::LeNetConfig lenet{32, 8, 32, 0.0f};
    nn::Rng base_rng(kSeed);
    nn::Network base = hybrid::build_lenet(lenet, base_rng);
    hybrid::ModelBundle bundle;
    bundle.backend = "sc-proposed-fast";
    bundle.lenet = lenet;
    bundle.confidence_margin = 0.5;
    bundle.trained_seed = kSeed;
    hybrid::BundleRung rung;
    rung.bits = 4;
    rung.qw = nn::quantize_conv_weights(hybrid::base_conv1_weights(base), 4);
    rung.flc.bits = 4;
    rung.flc.soft_threshold = 0.30;
    rung.flc.seed = static_cast<std::uint32_t>(kSeed | 1u);
    nn::Rng tail_rng(kSeed + 1);
    rung.tail = hybrid::build_tail(lenet, tail_rng);
    hybrid::copy_tail_params(base, rung.tail);
    bundle.rungs.push_back(std::move(rung));
    const std::string p = "test_fleet_frozen.bundle";
    hybrid::save_bundle(bundle, p);
    return p;
  }();
  return path;
}

/// Restores process-global trace state however the test exits. Mode must
/// be set BEFORE constructing the coordinator: shards inherit it at fork.
struct TraceModeGuard {
  explicit TraceModeGuard(obs::TraceMode mode, std::uint64_t every = 64) {
    obs::set_trace_mode(mode, every);
  }
  ~TraceModeGuard() { obs::set_trace_mode(obs::TraceMode::kOff); }
};

/// Like frozen_bundle_path(), but with a two-rung escalation ladder (2 then
/// 4 bits) so the shards instantiate an AdaptivePipeline and the connected-
/// trace test sees per-rung spans.
std::string ladder_bundle_path() {
  static const std::string path = [] {
    const hybrid::LeNetConfig lenet{32, 8, 32, 0.0f};
    nn::Rng base_rng(kSeed);
    nn::Network base = hybrid::build_lenet(lenet, base_rng);
    hybrid::ModelBundle bundle;
    bundle.backend = "sc-proposed-fast";
    bundle.lenet = lenet;
    bundle.confidence_margin = 0.5;
    bundle.trained_seed = kSeed;
    for (const unsigned bits : {2u, 4u}) {
      hybrid::BundleRung rung;
      rung.bits = bits;
      rung.qw =
          nn::quantize_conv_weights(hybrid::base_conv1_weights(base), bits);
      rung.flc.bits = bits;
      rung.flc.soft_threshold = 0.30;
      rung.flc.seed = static_cast<std::uint32_t>(kSeed | 1u);
      nn::Rng tail_rng(kSeed + 1);
      rung.tail = hybrid::build_tail(lenet, tail_rng);
      hybrid::copy_tail_params(base, rung.tail);
      bundle.rungs.push_back(std::move(rung));
    }
    const std::string p = "test_fleet_ladder.bundle";
    hybrid::save_bundle(bundle, p);
    return p;
  }();
  return path;
}

FleetConfig small_config(int shards) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.bundle_path = frozen_bundle_path();
  cfg.ring_capacity = 64;
  cfg.shard_max_batch = 8;
  cfg.degrade_watermark = 64;  // parked: identity covers every frame
  return cfg;
}

/// Deterministic frames from the session driver, flattened in event order.
struct Workload {
  std::vector<std::uint64_t> keys;
  std::vector<std::vector<float>> frames;
};

Workload make_workload(long sessions, long frames_per_session) {
  sensor::SessionStreamConfig cfg;
  cfg.sessions = sessions;
  cfg.frames_per_session = frames_per_session;
  cfg.seed = kSeed;
  sensor::SessionStreamDriver driver(cfg);
  Workload out;
  sensor::SessionEvent event;
  while (driver.next(event)) {
    out.keys.push_back(event.sensor_id);
    out.frames.push_back(event.frame.pixels);
  }
  return out;
}

std::vector<runtime::Prediction> reference_predictions(
    const Workload& work) {
  hybrid::ModelBundle bundle = hybrid::load_bundle(frozen_bundle_path());
  const std::unique_ptr<runtime::Servable> direct =
      hybrid::instantiate_servable(bundle, runtime::RuntimeConfig{});
  nn::Tensor all({static_cast<int>(work.frames.size()), 1, kFrameSide,
                  kFrameSide});
  for (std::size_t i = 0; i < work.frames.size(); ++i) {
    std::copy(work.frames[i].begin(), work.frames[i].end(),
              all.data() + i * static_cast<std::size_t>(kFramePixels));
  }
  return direct->classify(all);
}

TEST(FleetConfigTest, ValidateNamesTheOffendingField) {
  FleetConfig cfg = small_config(2);
  cfg.shards = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config(2);
  cfg.ring_capacity = 3;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config(2);
  cfg.bundle_path.clear();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(small_config(2).validate());
}

TEST(Fleet, PredictionsBitIdenticalToInProcessServable) {
  SKIP_UNDER_TSAN();
  const Workload work = make_workload(24, 2);
  const std::vector<runtime::Prediction> reference =
      reference_predictions(work);

  FleetCoordinator fleet(small_config(2));
  std::vector<std::future<FleetResult>> futures;
  for (std::size_t i = 0; i < work.keys.size(); ++i) {
    futures.push_back(
        fleet.submit(work.keys[i], /*tenant=*/0, work.frames[i].data()));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const FleetResult r = futures[i].get();
    EXPECT_FALSE(r.deadline_dropped);
    EXPECT_EQ(r.prediction.label, reference[i].label) << "frame " << i;
    EXPECT_EQ(r.prediction.margin, reference[i].margin) << "frame " << i;
    EXPECT_EQ(r.prediction.rung, reference[i].rung) << "frame " << i;
    EXPECT_EQ(r.prediction.bits_used, reference[i].bits_used)
        << "frame " << i;
  }

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.completed, work.keys.size());
  EXPECT_EQ(stats.fleet_latency.count(), work.keys.size());
  fleet.shutdown();
}

TEST(Fleet, SessionsStickToTheirShard) {
  SKIP_UNDER_TSAN();
  FleetCoordinator fleet(small_config(2));
  const Workload work = make_workload(16, 1);
  for (const std::uint64_t key : work.keys) {
    const std::uint32_t shard = fleet.shard_of(key);
    EXPECT_EQ(fleet.shard_of(key), shard);
    EXPECT_LT(shard, 2u);
  }
  fleet.shutdown();
}

TEST(Fleet, KillDashNineRecoversWithinBudgetAndLosesNothing) {
  SKIP_UNDER_TSAN();
  const Workload work = make_workload(32, 2);
  const std::vector<runtime::Prediction> reference =
      reference_predictions(work);

  // CI's sampling mode: the flight recorder's batch-begin events bypass
  // per-id sampling, so the post-mortem must reconstruct the dead shard's
  // batches even though most trace ids are not sampled.
  TraceModeGuard trace(obs::TraceMode::kSampled, 16);
  FleetCoordinator fleet(small_config(2));
  // Let both shards finish cold-starting before injecting the fault, so
  // the kill hits a serving incarnation (epoch 1) and the respawn is
  // observable as epoch 2.
  for (bool serving = false; !serving;) {
    serving = true;
    for (const ShardReport& shard : fleet.stats().shards) {
      serving &= shard.epoch >= 1;
    }
    if (!serving) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Kill only after at least one frame was routed to shard 0 AND shard 0
  // served something, so its flight recorder provably holds the batches
  // the post-mortem must reconstruct.
  std::size_t first_on_shard0 = 0;
  while (first_on_shard0 < work.keys.size() &&
         fleet.shard_of(work.keys[first_on_shard0]) != 0) {
    ++first_on_shard0;
  }
  ASSERT_LT(first_on_shard0, work.keys.size());
  const std::size_t kill_at =
      std::max(work.keys.size() / 4, first_on_shard0 + 1);

  std::vector<std::future<FleetResult>> futures;
  for (std::size_t i = 0; i < work.keys.size(); ++i) {
    futures.push_back(
        fleet.submit(work.keys[i], /*tenant=*/0, work.frames[i].data()));
    if (i == kill_at) {
      while (fleet.stats().shards[0].served == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      fleet.kill_shard(0);  // SIGKILL mid-stream
    }
  }
  // Every future still resolves — the respawned shard replays the ring
  // tail — and the replayed arithmetic is still bit-identical.
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const FleetResult r = futures[i].get();
    EXPECT_EQ(r.prediction.label, reference[i].label) << "frame " << i;
    EXPECT_EQ(r.prediction.margin, reference[i].margin) << "frame " << i;
  }

  const FleetStats stats = fleet.stats();
  EXPECT_GE(stats.respawns, 1u);
  ASSERT_FALSE(stats.recovery_ready_ms.empty());
  for (const double ms : stats.recovery_ready_ms) {
    EXPECT_LT(ms, 250.0) << "respawn took too long";
  }
  bool respawned_epoch = false;
  for (const ShardReport& shard : stats.shards) {
    respawned_epoch |= shard.epoch > 1;
  }
  EXPECT_TRUE(respawned_epoch);

  // The supervisor extracted the dead incarnation's flight recorder
  // before the respawn overwrote the shm rings: the post-mortem must
  // name the killed shard and reconstruct its in-flight batches.
  ASSERT_FALSE(stats.postmortems.empty());
  const std::string& postmortem = stats.postmortems.front();
  EXPECT_NE(postmortem.find("fleet: shard 0"), std::string::npos)
      << postmortem;
  EXPECT_NE(postmortem.find("shard.batch.begin"), std::string::npos)
      << postmortem;
  EXPECT_NE(postmortem.find("seq="), std::string::npos) << postmortem;
  fleet.shutdown();
}

// One frame through a 2-shard fleet with a 2-rung ladder must yield a
// single connected trace: the same trace id on the coordinator's submit
// span, the ring-push instant, the shard's batch span, the pipeline's
// per-rung span, and the completion instant — across the fork boundary,
// merged into one Chrome trace by dump_trace().
TEST(Fleet, OneFrameYieldsOneConnectedTraceAcrossTheForkBoundary) {
  SKIP_UNDER_TSAN();
  TraceModeGuard trace(obs::TraceMode::kAll);
  FleetConfig cfg = small_config(2);
  cfg.bundle_path = ladder_bundle_path();
  FleetCoordinator fleet(cfg);
  const Workload work = make_workload(1, 1);

  const FleetResult r =
      fleet.submit(work.keys[0], /*tenant=*/2, work.frames[0].data()).get();
  EXPECT_FALSE(r.deadline_dropped);
  ASSERT_NE(r.prediction.trace_id, 0u);  // the minted id rode the wire back

  const std::string path = "test_fleet_connected_trace.json";
  ASSERT_TRUE(fleet.dump_trace(path));
  fleet.shutdown();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  std::remove(path.c_str());

  // Every event is one line of the dump; a span belongs to our trace iff
  // its line carries our trace_id arg.
  const std::string id_arg =
      "\"trace_id\":" + std::to_string(r.prediction.trace_id);
  const auto has_span_with_id = [&](const char* name) {
    std::istringstream lines(json);
    std::string line;
    const std::string name_key = std::string("\"name\":\"") + name + "\"";
    while (std::getline(lines, line)) {
      if (line.find(name_key) != std::string::npos &&
          line.find(id_arg) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_span_with_id("coord.submit")) << json;
  EXPECT_TRUE(has_span_with_id("ring.push")) << json;
  EXPECT_TRUE(has_span_with_id("shard.batch")) << json;
  EXPECT_TRUE(has_span_with_id("pipeline.rung")) << json;
  EXPECT_TRUE(has_span_with_id("coord.complete")) << json;

  // The merged dump has a coordinator lane and shard lanes.
  EXPECT_NE(json.find("\"name\":\"coordinator\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard 1\""), std::string::npos);
}

TEST(Fleet, TenantQuotaRejectsAtAdmission) {
  SKIP_UNDER_TSAN();
  FleetConfig cfg = small_config(1);
  cfg.tenant_quota[5] = 0;  // tenant 5 may have nothing in flight
  FleetCoordinator fleet(cfg);
  const Workload work = make_workload(2, 1);

  bool threw = false;
  try {
    (void)fleet.submit(work.keys[0], /*tenant=*/5, work.frames[0].data());
  } catch (const FleetRejectError& e) {
    threw = true;
    EXPECT_EQ(e.reason(), FleetRejectError::Reason::kTenantQuota);
  }
  EXPECT_TRUE(threw);

  // Other tenants are unaffected.
  auto ok = fleet.submit(work.keys[1], /*tenant=*/1, work.frames[1].data());
  EXPECT_GE(ok.get().prediction.label, 0);

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.rejected_quota, 1u);
  EXPECT_EQ(stats.completed, 1u);
  fleet.shutdown();
}

TEST(Fleet, HardDeadlineFramesDropWhenStale) {
  SKIP_UNDER_TSAN();
  FleetCoordinator fleet(small_config(1));
  const Workload work = make_workload(8, 1);

  // A deadline far in the past relative to any queueing: submit with a
  // microscopic budget, then give the shard time — every frame must come
  // back marked dropped, with no compute spent on it.
  std::vector<std::future<FleetResult>> futures;
  for (std::size_t i = 0; i < work.keys.size(); ++i) {
    futures.push_back(fleet.submit(work.keys[i], /*tenant=*/0,
                                   work.frames[i].data(),
                                   SloClass::kHardDeadline,
                                   /*deadline_ms=*/0.000001));
  }
  long dropped = 0;
  for (auto& future : futures) {
    const FleetResult r = future.get();
    if (r.deadline_dropped) ++dropped;
  }
  // Timing-dependent: the first batch may beat the deadline, but under a
  // 1 us budget at least some frames must be shed.
  EXPECT_GT(dropped, 0);
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.deadline_dropped, static_cast<std::uint64_t>(dropped));
  // Dropped frames are excluded from the latency distribution.
  EXPECT_EQ(stats.fleet_latency.count(),
            work.keys.size() - static_cast<std::size_t>(dropped));
  fleet.shutdown();
}

TEST(Fleet, DegradeTolerantBacklogGetsTheReducedRungCap) {
  SKIP_UNDER_TSAN();
  FleetConfig cfg = small_config(1);
  cfg.degrade_watermark = 2;  // trip the degrade path almost immediately
  cfg.degraded_rung_cap = 0;
  FleetCoordinator fleet(cfg);
  const Workload work = make_workload(32, 1);

  std::vector<std::future<FleetResult>> futures;
  for (std::size_t i = 0; i < work.keys.size(); ++i) {
    futures.push_back(fleet.submit(work.keys[i], /*tenant=*/0,
                                   work.frames[i].data(),
                                   SloClass::kDegradeTolerant));
  }
  long capped = 0;
  for (auto& future : futures) {
    const FleetResult r = future.get();
    if (r.prediction.rung_cap != runtime::Servable::kUncappedRung) ++capped;
  }
  // With a watermark of 2 and a burst of 32, the ring must have been
  // backlogged for most submissions.
  EXPECT_GT(capped, 0);
  fleet.shutdown();
}

TEST(Fleet, ShutdownResolvesEveryFutureAndIsIdempotent) {
  SKIP_UNDER_TSAN();
  FleetConfig cfg = small_config(1);
  cfg.respawn = false;
  FleetCoordinator fleet(cfg);
  const Workload work = make_workload(4, 1);
  std::vector<std::future<FleetResult>> futures;
  for (std::size_t i = 0; i < work.keys.size(); ++i) {
    futures.push_back(
        fleet.submit(work.keys[i], /*tenant=*/0, work.frames[i].data()));
  }
  fleet.shutdown();
  fleet.shutdown();  // idempotent
  // Whatever was admitted either served or failed exceptionally — no
  // future may hang.
  for (auto& future : futures) {
    EXPECT_NO_FATAL_FAILURE({
      try {
        (void)future.get();
      } catch (const std::runtime_error&) {
        // drained-at-shutdown frames may resolve exceptionally
      }
    });
  }
  EXPECT_THROW((void)fleet.submit(work.keys[0], 0, work.frames[0].data()),
               std::runtime_error);
}

TEST(Fleet, StatsReportPerShardFootprint) {
  SKIP_UNDER_TSAN();
  FleetCoordinator fleet(small_config(2));
  const Workload work = make_workload(8, 1);
  std::vector<std::future<FleetResult>> futures;
  for (std::size_t i = 0; i < work.keys.size(); ++i) {
    futures.push_back(
        fleet.submit(work.keys[i], /*tenant=*/static_cast<std::uint32_t>(i % 2),
                     work.frames[i].data()));
  }
  for (auto& future : futures) (void)future.get();
  const FleetStats stats = fleet.stats();
  ASSERT_EQ(stats.shards.size(), 2u);
  for (const ShardReport& shard : stats.shards) {
    EXPECT_TRUE(shard.alive);
    EXPECT_GT(shard.pid, 0);
    EXPECT_GT(shard.heartbeat, 0u);
    EXPECT_GT(shard.peak_rss_bytes, 0u);  // a live process has a footprint
  }
  EXPECT_EQ(stats.shards[0].served + stats.shards[1].served,
            work.keys.size());
  // Per-tenant histograms merge to the fleet distribution.
  std::uint64_t tenant_total = 0;
  for (const auto& [tenant, histogram] : stats.tenant_latency) {
    tenant_total += histogram.count();
  }
  EXPECT_EQ(tenant_total, stats.fleet_latency.count());
  fleet.shutdown();
}

}  // namespace
}  // namespace scbnn::fleet
