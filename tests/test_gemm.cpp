// Property tests for the tail GEMM / pool microkernels (nn/gemm.h): every
// dispatch level must match the scalar reference BIT FOR BIT — including
// signed zeros — on random and boundary inputs, across shapes that exercise
// the 16-wide, 8-wide, and scalar remainder column paths and every row-tile
// remainder.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "nn/gemm.h"

namespace {

using scbnn::nn::kern::gemm_colbias_act;
using scbnn::nn::kern::gemm_rowbias_act;
using scbnn::nn::kern::maxpool2;
using scbnn::sc::simd::available_levels;
using scbnn::sc::simd::Level;
using scbnn::sc::simd::to_string;

// Mixes boundary floats (signed zeros, denormals, huge/tiny magnitudes)
// into otherwise-uniform data. No NaNs/infs: the GEMM contract is "same
// float sequence", which NaN payload propagation rules would make
// compiler-dependent to *state*, though the kernels still execute the same
// instructions; the pool's NaN behavior is pinned separately below.
std::vector<float> boundary_mix(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> uni(-2.0f, 2.0f);
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng() % 16) {
      case 0: v[i] = 0.0f; break;
      case 1: v[i] = -0.0f; break;
      case 2: v[i] = 1e-42f; break;   // denormal
      case 3: v[i] = -1e-42f; break;
      case 4: v[i] = 3e18f; break;    // large enough to overflow products
      case 5: v[i] = -3e18f; break;
      case 6: v[i] = 1e-20f; break;
      default: v[i] = uni(rng); break;
    }
  }
  return v;
}

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
              std::bit_cast<std::uint32_t>(b[i]))
        << what << ": element " << i << " differs: " << a[i] << " vs "
        << b[i];
  }
}

struct Shape {
  int m, k, n;
};

// Covers full 4-row tiles + 1..3-row remainders, and 16/8/scalar column
// paths (n = 1, 5, 8, 16, 17, 23, 100).
const Shape kShapes[] = {{1, 1, 1},   {1, 7, 5},    {3, 8, 8},
                         {4, 16, 16}, {5, 33, 17},  {8, 25, 23},
                         {7, 40, 100}, {13, 9, 31}};

TEST(GemmKernels, RowBiasMatchesScalarAtEveryLevel) {
  std::uint32_t seed = 1;
  for (const Shape& s : kShapes) {
    for (const bool relu : {false, true}) {
      const auto a = boundary_mix(static_cast<std::size_t>(s.m) * s.k, seed++);
      const auto b = boundary_mix(static_cast<std::size_t>(s.k) * s.n, seed++);
      const auto bias = boundary_mix(static_cast<std::size_t>(s.m), seed++);
      std::vector<float> ref(static_cast<std::size_t>(s.m) * s.n);
      gemm_rowbias_act(a.data(), b.data(), bias.data(), ref.data(), s.m, s.k,
                       s.n, relu, Level::kScalar);
      for (const Level level : available_levels()) {
        std::vector<float> got(ref.size(), -1.0f);
        gemm_rowbias_act(a.data(), b.data(), bias.data(), got.data(), s.m,
                         s.k, s.n, relu, level);
        expect_bitwise_equal(ref, got, to_string(level));
      }
    }
  }
}

TEST(GemmKernels, ColBiasMatchesScalarAtEveryLevel) {
  std::uint32_t seed = 101;
  for (const Shape& s : kShapes) {
    for (const bool relu : {false, true}) {
      const auto a = boundary_mix(static_cast<std::size_t>(s.m) * s.k, seed++);
      const auto b = boundary_mix(static_cast<std::size_t>(s.k) * s.n, seed++);
      const auto bias = boundary_mix(static_cast<std::size_t>(s.n), seed++);
      std::vector<float> ref(static_cast<std::size_t>(s.m) * s.n);
      gemm_colbias_act(a.data(), b.data(), bias.data(), ref.data(), s.m, s.k,
                       s.n, relu, Level::kScalar);
      for (const Level level : available_levels()) {
        std::vector<float> got(ref.size(), -1.0f);
        gemm_colbias_act(a.data(), b.data(), bias.data(), got.data(), s.m,
                         s.k, s.n, relu, level);
        expect_bitwise_equal(ref, got, to_string(level));
      }
    }
  }
}

TEST(GemmKernels, ColBiasAcceptsNullBias) {
  const Shape s{5, 12, 17};
  const auto a = boundary_mix(static_cast<std::size_t>(s.m) * s.k, 7);
  const auto b = boundary_mix(static_cast<std::size_t>(s.k) * s.n, 8);
  std::vector<float> ref(static_cast<std::size_t>(s.m) * s.n);
  gemm_colbias_act(a.data(), b.data(), nullptr, ref.data(), s.m, s.k, s.n,
                   false, Level::kScalar);
  for (const Level level : available_levels()) {
    std::vector<float> got(ref.size(), -1.0f);
    gemm_colbias_act(a.data(), b.data(), nullptr, got.data(), s.m, s.k, s.n,
                     false, level);
    expect_bitwise_equal(ref, got, to_string(level));
  }
}

// The GEMM reference order written out longhand (Conv2D::forward's
// bias-init accumulate): an independent check that the scalar kernel IS
// the reference, not just self-consistent.
TEST(GemmKernels, ScalarRowBiasIsTheConvOrder) {
  const Shape s{3, 10, 9};
  const auto a = boundary_mix(static_cast<std::size_t>(s.m) * s.k, 21);
  const auto b = boundary_mix(static_cast<std::size_t>(s.k) * s.n, 22);
  const auto bias = boundary_mix(static_cast<std::size_t>(s.m), 23);
  std::vector<float> want(static_cast<std::size_t>(s.m) * s.n);
  for (int i = 0; i < s.m; ++i) {
    for (int j = 0; j < s.n; ++j) {
      want[static_cast<std::size_t>(i) * s.n + j] = bias[i];
    }
    for (int p = 0; p < s.k; ++p) {
      for (int j = 0; j < s.n; ++j) {
        want[static_cast<std::size_t>(i) * s.n + j] +=
            a[static_cast<std::size_t>(i) * s.k + p] *
            b[static_cast<std::size_t>(p) * s.n + j];
      }
    }
  }
  std::vector<float> got(want.size());
  gemm_rowbias_act(a.data(), b.data(), bias.data(), got.data(), s.m, s.k,
                   s.n, false, Level::kScalar);
  expect_bitwise_equal(want, got, "conv order");
}

TEST(MaxPoolKernel, MatchesScalarAtEveryLevel) {
  std::uint32_t seed = 301;
  // (planes, h, w): even dims, ow hitting the vector path (>= 8), the
  // scalar remainder (ow % 8 != 0), and the all-remainder case.
  const int shapes[][3] = {{1, 2, 2},  {3, 4, 6},   {32, 28, 28},
                           {8, 14, 14}, {2, 10, 34}, {5, 6, 16}};
  for (const auto& sh : shapes) {
    const int planes = sh[0], h = sh[1], w = sh[2];
    const auto x = boundary_mix(
        static_cast<std::size_t>(planes) * h * w, seed++);
    std::vector<float> ref(static_cast<std::size_t>(planes) * (h / 2) *
                           (w / 2));
    maxpool2(x.data(), planes, h, w, ref.data(), Level::kScalar);
    for (const Level level : available_levels()) {
      std::vector<float> got(ref.size(), -1.0f);
      maxpool2(x.data(), planes, h, w, got.data(), level);
      expect_bitwise_equal(ref, got, to_string(level));
    }
  }
}

// The comparison ORDER of the pool is observable through signed zeros:
// with window {{-5, +0.0}, {-0.0, -5}}, the reference (row-major strict
// `>` chain) returns +0.0; a vertical-then-horizontal reduction would
// return -0.0. Pin the exact bits at every level.
TEST(MaxPoolKernel, SignedZeroTieBreaksLikeReference) {
  const int planes = 1, h = 2, w = 16;  // one vector row, 8 windows
  std::vector<float> x(static_cast<std::size_t>(h) * w, -5.0f);
  for (int j = 0; j < w / 2; ++j) {
    x[static_cast<std::size_t>(2 * j) + 1] = 0.0f;  // row 0, odd column
    x[static_cast<std::size_t>(w) + 2 * j] = -0.0f;  // row 1, even column
  }
  for (const Level level : available_levels()) {
    std::vector<float> y(static_cast<std::size_t>(w) / 2, -1.0f);
    maxpool2(x.data(), planes, h, w, y.data(), level);
    for (float v : y) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(v),
                std::bit_cast<std::uint32_t>(0.0f))
          << "level " << to_string(level);
    }
  }
}

// NaN handling is part of the strict-`>` contract: a NaN already in `best`
// survives every later comparison; a NaN candidate never wins.
TEST(MaxPoolKernel, NanPropagatesLikeReference) {
  const float qnan = std::bit_cast<float>(0x7fc00000u);
  const int planes = 1, h = 2, w = 20;
  std::vector<float> x(static_cast<std::size_t>(h) * w, 1.0f);
  x[0] = qnan;        // window 0: NaN at [0,0] -> stays NaN
  x[3] = qnan;        // window 1: NaN at [0,1] -> 1.0f wins
  std::vector<float> ref(static_cast<std::size_t>(w) / 2);
  maxpool2(x.data(), planes, h, w, ref.data(), Level::kScalar);
  ASSERT_TRUE(std::isnan(ref[0]));
  ASSERT_EQ(ref[1], 1.0f);
  for (const Level level : available_levels()) {
    std::vector<float> got(ref.size(), -1.0f);
    maxpool2(x.data(), planes, h, w, got.data(), level);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(ref[i]),
                std::bit_cast<std::uint32_t>(got[i]))
          << "level " << to_string(level) << " window " << i;
    }
  }
}

}  // namespace
