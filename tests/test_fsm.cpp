// Brown-Card FSM elements: tanh shape, and — key for the paper's argument —
// their failure on auto-correlated inputs, which the proposed TFF adder
// does not share (Section III).
#include "sc/fsm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "sc/sng.h"
#include "sc/tff.h"

namespace scbnn::sc {
namespace {

Bitstream bernoulli_stream(std::size_t n, double p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution bit(p);
  Bitstream s(n);
  for (std::size_t i = 0; i < n; ++i) s.set_bit(i, bit(rng));
  return s;
}

TEST(StochasticTanh, Validation) {
  EXPECT_THROW(StochasticTanh(0), std::invalid_argument);
  EXPECT_THROW(StochasticTanh(3), std::invalid_argument);
  EXPECT_NO_THROW(StochasticTanh(8));
}

TEST(StochasticTanh, ZeroInputMapsToZeroBipolar) {
  // Input p = 0.5 (bipolar 0) -> output should hover around bipolar 0.
  StochasticTanh fsm(8);
  const Bitstream in = bernoulli_stream(8192, 0.5, 11);
  const Bitstream out = fsm.transform(in);
  EXPECT_NEAR(out.bipolar(), 0.0, 0.1);
}

TEST(StochasticTanh, SaturatesAtExtremes) {
  StochasticTanh fsm(8);
  EXPECT_NEAR(fsm.transform(Bitstream::constant(512, true)).bipolar(), 1.0,
              0.05);
  EXPECT_NEAR(fsm.transform(Bitstream::constant(512, false)).bipolar(), -1.0,
              0.05);
}

class StanhCurveTest : public ::testing::TestWithParam<double> {};

TEST_P(StanhCurveTest, TracksTanhReference) {
  const double x = GetParam();  // bipolar input value
  const unsigned states = 8;
  StochasticTanh fsm(states);
  const Bitstream in = bernoulli_stream(16384, (x + 1.0) / 2.0, 177);
  const Bitstream out = fsm.transform(in);
  EXPECT_NEAR(out.bipolar(), stanh_reference(states, x), 0.12)
      << "x = " << x;
}

INSTANTIATE_TEST_SUITE_P(Curve, StanhCurveTest,
                         ::testing::Values(-0.8, -0.5, -0.25, 0.0, 0.25, 0.5,
                                           0.8));

TEST(StochasticTanh, MonotonicInInput) {
  const unsigned states = 16;
  double prev = -2.0;
  for (double x : {-0.6, -0.2, 0.0, 0.2, 0.6}) {
    StochasticTanh fsm(states);
    const Bitstream in = bernoulli_stream(16384, (x + 1.0) / 2.0, 31);
    const double out = fsm.transform(in).bipolar();
    EXPECT_GT(out, prev - 0.05) << "x = " << x;
    prev = out;
  }
}

TEST(StochasticTanh, BreaksOnAutoCorrelatedInput) {
  // The paper's Section III point: common sequential SC circuits do not
  // function as intended when the input is auto-correlated. A ramp
  // (prefix-ones) encoding of bipolar +0.5 saturates the FSM high for the
  // leading 1s and low for the trailing 0s, so the output reproduces the
  // INPUT value instead of the squashed tanh(4 * 0.5) ~ 0.96.
  const std::size_t n = 4096;
  const double x = 0.5;
  const unsigned states = 8;
  const Bitstream ramp =
      Bitstream::prefix_ones(n, static_cast<std::size_t>((x + 1.0) / 2.0 * n));
  StochasticTanh fsm(states);
  const double corrupted = fsm.transform(ramp).bipolar();
  EXPECT_NEAR(corrupted, x, 0.05);  // identity: the nonlinearity vanished
  EXPECT_LT(corrupted, stanh_reference(states, x) - 0.3);

  // Same value through an uncorrelated encoding: correct squashing.
  StochasticTanh fresh(states);
  const double ok =
      fresh.transform(bernoulli_stream(n, (x + 1.0) / 2.0, 5)).bipolar();
  EXPECT_NEAR(ok, stanh_reference(states, x), 0.12);

  // And the paper's TFF adder on the SAME auto-correlated streams: exact.
  const Bitstream sum = tff_add(ramp, ramp, false);
  EXPECT_NEAR(sum.unipolar(), (x + 1.0) / 2.0, 1.0 / static_cast<double>(n));
}

TEST(StochasticTanh, StateClampsAtBounds) {
  StochasticTanh fsm(4);
  for (int i = 0; i < 10; ++i) (void)fsm.clock(true);
  EXPECT_EQ(fsm.state(), 3u);
  for (int i = 0; i < 10; ++i) (void)fsm.clock(false);
  EXPECT_EQ(fsm.state(), 0u);
}

TEST(StochasticTanh, TransformResetsState) {
  StochasticTanh fsm(8);
  (void)fsm.transform(Bitstream::constant(64, true));  // drive to the top
  const Bitstream out = fsm.transform(bernoulli_stream(8192, 0.5, 3));
  EXPECT_NEAR(out.bipolar(), 0.0, 0.1);  // no leakage from the first call
}

}  // namespace
}  // namespace scbnn::sc
