// Sensor-stream subsystem tests: deterministic frame sources and arrival
// models, noisy-sensor decorator seeding, the three backpressure policies
// through a live ModelRouter, and StreamSupervisor rung-cap degradation and
// recovery (both against fake load signals and a real overloaded stream).
#include "sensor/sensor_session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "data/synthetic_mnist.h"
#include "hybrid/hybrid_network.h"
#include "nn/init.h"
#include "nn/quantize.h"
#include "runtime/adaptive_pipeline.h"
#include "runtime/inference_engine.h"
#include "runtime/model_router.h"
#include "sensor/frame_source.h"
#include "sensor/stream_supervisor.h"

namespace scbnn::sensor {
namespace {

constexpr std::size_t kPixels =
    static_cast<std::size_t>(hybrid::kImageSize) * hybrid::kImageSize;

hybrid::LeNetConfig tiny_lenet() {
  hybrid::LeNetConfig cfg;
  cfg.conv1_kernels = 8;
  cfg.conv2_kernels = 8;
  cfg.dense_units = 32;
  cfg.dropout = 0.0f;
  return cfg;
}

/// Deterministic fixed-precision backend (shared base model, frozen).
std::shared_ptr<runtime::InferenceEngine> make_engine_backend() {
  nn::Rng base_rng(3);
  nn::Network base = hybrid::build_lenet(tiny_lenet(), base_rng);
  const auto qw =
      nn::quantize_conv_weights(hybrid::base_conv1_weights(base), 4);
  hybrid::FirstLayerConfig flc;
  flc.bits = 4;
  flc.soft_threshold = 0.3;
  runtime::RuntimeConfig rc;
  rc.threads = 2;
  rc.chunk_images = 3;
  auto engine =
      std::make_shared<runtime::InferenceEngine>("sc-proposed", qw, flc, rc);
  nn::Rng tail_rng(7);
  nn::Network tail = hybrid::build_tail(tiny_lenet(), tail_rng);
  hybrid::copy_tail_params(base, tail);
  engine->set_tail(std::move(tail));
  return engine;
}

/// Deterministic two-rung adaptive backend; `margin` tunes how eagerly it
/// escalates (1.0 = every frame climbs the whole allowed ladder).
std::shared_ptr<runtime::AdaptivePipeline> make_adaptive_backend(
    double margin) {
  nn::Rng base_rng(3);
  nn::Network base = hybrid::build_lenet(tiny_lenet(), base_rng);
  std::vector<runtime::AdaptiveRung> rungs;
  for (unsigned bits : {3u, 6u}) {
    runtime::AdaptiveRung rung;
    rung.bits = bits;
    const auto qw =
        nn::quantize_conv_weights(hybrid::base_conv1_weights(base), bits);
    hybrid::FirstLayerConfig flc;
    flc.bits = bits;
    flc.soft_threshold = 0.3;
    rung.engine = hybrid::make_first_layer_engine(
        hybrid::FirstLayerDesign::kScProposed, qw, flc);
    nn::Rng tail_rng(7);
    rung.tail = hybrid::build_tail(tiny_lenet(), tail_rng);
    hybrid::copy_tail_params(base, rung.tail);
    rungs.push_back(std::move(rung));
  }
  runtime::RuntimeConfig rc;
  rc.threads = 2;
  rc.chunk_images = 3;
  return std::make_shared<runtime::AdaptivePipeline>(std::move(rungs), margin,
                                                     rc);
}

/// Decorator that slows every batch down by a fixed sleep — a determinate
/// way to overload a stream regardless of machine speed. Forwards the
/// rung-cap API so a supervisor can degrade through it.
class SlowServable : public runtime::Servable {
 public:
  SlowServable(std::shared_ptr<runtime::Servable> inner,
               std::chrono::microseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}

  runtime::ServeStats classify(const float* images, int n,
                               runtime::Prediction* out) override {
    std::this_thread::sleep_for(delay_);
    return inner_->classify(images, n, out);
  }
  [[nodiscard]] std::string name() const override {
    return "slow(" + inner_->name() + ")";
  }
  [[nodiscard]] unsigned threads() const noexcept override {
    return inner_->threads();
  }
  void set_max_rung(int cap) noexcept override { inner_->set_max_rung(cap); }
  [[nodiscard]] int max_rung() const noexcept override {
    return inner_->max_rung();
  }

 private:
  std::shared_ptr<runtime::Servable> inner_;
  std::chrono::microseconds delay_;
};

/// A three-rung ladder in cap behavior only — classify is trivial. For
/// supervisor unit tests that need determinism without real compute.
class FakeLadder : public runtime::Servable {
 public:
  explicit FakeLadder(int top_rung) : top_(top_rung) {}

  runtime::ServeStats classify(const float* /*images*/, int n,
                               runtime::Prediction* out) override {
    for (int i = 0; i < n; ++i) out[i] = runtime::Prediction{};
    runtime::ServeStats stats;
    stats.images = n;
    return stats;
  }
  [[nodiscard]] std::string name() const override { return "fake-ladder"; }
  [[nodiscard]] unsigned threads() const noexcept override { return 1; }
  void set_max_rung(int cap) noexcept override {
    cap_.store(cap, std::memory_order_relaxed);
  }
  [[nodiscard]] int max_rung() const noexcept override {
    const int cap = cap_.load(std::memory_order_relaxed);
    return cap < 0 ? 0 : (cap > top_ ? top_ : cap);
  }

 private:
  int top_;
  std::atomic<int> cap_{runtime::Servable::kUncappedRung};
};

/// Scriptable load signal for deterministic supervisor tests.
class FakeSignal : public LoadSignal {
 public:
  [[nodiscard]] long inflight() const override { return inflight_.load(); }
  [[nodiscard]] double recent_p99_ms() const override { return p99_.load(); }
  void set(long inflight, double p99 = 0.0) {
    inflight_.store(inflight);
    p99_.store(p99);
  }

 private:
  std::atomic<long> inflight_{0};
  std::atomic<double> p99_{0.0};
};

ArrivalConfig arrivals(ArrivalKind kind, double rate_hz) {
  ArrivalConfig cfg;
  cfg.kind = kind;
  cfg.rate_hz = rate_hz;
  return cfg;
}

/// Collect a source's full stream (reset first).
std::vector<Frame> drain(FrameSource& source) {
  source.reset();
  std::vector<Frame> frames;
  Frame frame;
  while (source.next(frame)) frames.push_back(frame);
  return frames;
}

void expect_same_stream(const std::vector<Frame>& a,
                        const std::vector<Frame>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sequence, b[i].sequence);
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_DOUBLE_EQ(a[i].gap_s, b[i].gap_s);
    ASSERT_EQ(a[i].pixels, b[i].pixels) << "frame " << i << " differs";
  }
}

data::Dataset tiny_pool(std::size_t n) {
  return data::generate_synthetic_mnist(n, 1, 11).train;
}

// ------------------------------------------------------------ ArrivalModel

TEST(ArrivalModel, DeterministicPerSeedAndAcrossReset) {
  for (const ArrivalKind kind :
       {ArrivalKind::kUniform, ArrivalKind::kPoisson, ArrivalKind::kBursty,
        ArrivalKind::kDiurnal}) {
    ArrivalModel a(arrivals(kind, 500.0), 42);
    ArrivalModel b(arrivals(kind, 500.0), 42);
    std::vector<double> first;
    for (int i = 0; i < 64; ++i) {
      const double gap = a.next_gap_s();
      EXPECT_GE(gap, 0.0);
      EXPECT_DOUBLE_EQ(gap, b.next_gap_s()) << to_string(kind);
      first.push_back(gap);
    }
    a.reset();
    for (int i = 0; i < 64; ++i) {
      EXPECT_DOUBLE_EQ(a.next_gap_s(), first[static_cast<std::size_t>(i)])
          << to_string(kind) << " after reset";
    }
  }
}

TEST(ArrivalModel, UniformIsExactlyTheMeanGap) {
  ArrivalModel m(arrivals(ArrivalKind::kUniform, 250.0), 1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(m.next_gap_s(), 1.0 / 250.0);
}

TEST(ArrivalModel, PoissonMeanRateIsRoughlyHonored) {
  ArrivalModel m(arrivals(ArrivalKind::kPoisson, 1000.0), 9);
  double total = 0.0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) total += m.next_gap_s();
  const double mean_gap = total / kN;
  EXPECT_NEAR(mean_gap, 1e-3, 2e-4);  // fixed seed, generous band
}

TEST(ArrivalModel, BurstyLongRunRateMatchesConfiguredRate) {
  // Regression: the idle gap stands in for the first frame's burst gap,
  // so each burst_len-frame cycle must average burst_len/rate_hz total.
  ArrivalConfig cfg = arrivals(ArrivalKind::kBursty, 1000.0);
  cfg.burst_len = 4;
  ArrivalModel m(cfg, 9);
  double total = 0.0;
  constexpr int kN = 8000;
  for (int i = 0; i < kN; ++i) total += m.next_gap_s();
  EXPECT_NEAR(total / kN, 1e-3, 2e-4);  // fixed seed, generous band
}

TEST(ArrivalModel, ValidateRejectsNonsense) {
  ArrivalConfig bad = arrivals(ArrivalKind::kPoisson, 0.0);
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = arrivals(ArrivalKind::kBursty, 100.0);
  bad.burst_rate_hz = 50.0;  // "burst" slower than the mean
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = arrivals(ArrivalKind::kDiurnal, 100.0);
  bad.swing = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// ----------------------------------------------------- DatasetReplaySource

TEST(DatasetReplaySource, DeterministicWrapsAndTerminates) {
  const data::Dataset pool = tiny_pool(5);
  DatasetReplaySource a(pool, 12, arrivals(ArrivalKind::kPoisson, 1000.0),
                        21);
  DatasetReplaySource b(pool, 12, arrivals(ArrivalKind::kPoisson, 1000.0),
                        21);
  const std::vector<Frame> sa = drain(a);
  const std::vector<Frame> sb = drain(b);
  expect_same_stream(sa, sb);
  ASSERT_EQ(sa.size(), 12u);

  // Wrap-around: frame 5+i replays image i, label included.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(sa[i].pixels, sa[i + 5].pixels);
    EXPECT_EQ(sa[i].label, sa[i + 5].label);
    EXPECT_EQ(sa[i].label, pool.labels[i]);
  }
  // Exhausted: another next() keeps returning false.
  Frame extra;
  EXPECT_FALSE(a.next(extra));
  EXPECT_FALSE(a.next(extra));
  EXPECT_EQ(a.total_frames(), 12);
}

TEST(DatasetReplaySource, RejectsEmptyAndNonPositive) {
  const data::Dataset pool = tiny_pool(3);
  EXPECT_THROW(DatasetReplaySource(data::Dataset{}, 5,
                                   arrivals(ArrivalKind::kUniform, 10.0), 1),
               std::invalid_argument);
  EXPECT_THROW(
      DatasetReplaySource(pool, 0, arrivals(ArrivalKind::kUniform, 10.0), 1),
      std::invalid_argument);
}

// ---------------------------------------------------- DriftingCameraSource

TEST(DriftingCameraSource, DeterministicDriftingAndLabeled) {
  CameraDrift drift;
  drift.translate_px = 3.0;
  drift.period_frames = 40;
  DriftingCameraSource a(60, arrivals(ArrivalKind::kUniform, 100.0), 5,
                         drift);
  DriftingCameraSource b(60, arrivals(ArrivalKind::kUniform, 100.0), 5,
                         drift);
  const std::vector<Frame> sa = drain(a);
  expect_same_stream(sa, drain(b));
  ASSERT_EQ(sa.size(), 60u);

  for (const Frame& f : sa) {
    EXPECT_EQ(f.label, static_cast<int>(f.sequence % 10));
    for (const float p : f.pixels) {
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
    }
  }
  // The camera actually drifts: the same digit at opposite drift phases
  // renders differently (frames 0 and 20 are both '0' with instance 0/20,
  // so compare frames 10 and 30 — same digit, same phase offset half a
  // period apart -> opposite translation).
  EXPECT_NE(sa[10].pixels, sa[30].pixels);
}

// ------------------------------------------------------- NoisySensorSource

std::unique_ptr<FrameSource> replay(const data::Dataset& pool, long frames,
                                    std::uint64_t seed) {
  return std::make_unique<DatasetReplaySource>(
      pool, frames, arrivals(ArrivalKind::kUniform, 1000.0), seed);
}

TEST(NoisySensorSource, ZeroNoiseIsPassthrough) {
  const data::Dataset pool = tiny_pool(4);
  NoisySensorSource noisy(replay(pool, 8, 3), NoisySensorSource::Noise{}, 99);
  DatasetReplaySource clean(pool, 8,
                            arrivals(ArrivalKind::kUniform, 1000.0), 3);
  expect_same_stream(drain(noisy), drain(clean));
}

TEST(NoisySensorSource, SeededCorruptionIsReplayableAndSeedSensitive) {
  const data::Dataset pool = tiny_pool(4);
  NoisySensorSource::Noise noise;
  noise.gaussian_stddev = 0.08;
  NoisySensorSource a(replay(pool, 8, 3), noise, 111);
  NoisySensorSource b(replay(pool, 8, 3), noise, 111);
  NoisySensorSource c(replay(pool, 8, 3), noise, 222);

  const std::vector<Frame> sa = drain(a);
  expect_same_stream(sa, drain(b));    // same seed -> same corruption
  const std::vector<Frame> sa2 = drain(a);
  expect_same_stream(sa, sa2);         // reset -> same corruption again

  const std::vector<Frame> sc = drain(c);
  ASSERT_EQ(sa.size(), sc.size());
  bool any_differs = false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    any_differs |= sa[i].pixels != sc[i].pixels;
  }
  EXPECT_TRUE(any_differs) << "noise must depend on the decorator seed";

  // And it is actually noise: the corrupted stream differs from the clean
  // one but stays in [0,1].
  DatasetReplaySource clean(pool, 8,
                            arrivals(ArrivalKind::kUniform, 1000.0), 3);
  const std::vector<Frame> sclean = drain(clean);
  bool differs_from_clean = false;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    differs_from_clean |= sa[i].pixels != sclean[i].pixels;
    for (const float p : sa[i].pixels) {
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
    }
  }
  EXPECT_TRUE(differs_from_clean);
}

TEST(NoisySensorSource, SaltAndPepperSticksPixelsToTheRails) {
  const data::Dataset pool = tiny_pool(2);
  NoisySensorSource::Noise noise;
  noise.salt_pepper_prob = 0.25;
  NoisySensorSource noisy(replay(pool, 4, 3), noise, 7);
  long railed = 0, total = 0;
  for (const Frame& f : drain(noisy)) {
    for (const float p : f.pixels) {
      railed += (p == 0.0f || p == 1.0f) ? 1 : 0;
      ++total;
    }
  }
  // ~25% defective plus naturally-black background: well over a quarter.
  EXPECT_GT(railed, total / 4);
}

TEST(NoisySensorSource, AdcFaultsStayOnTheAdcGrid) {
  const data::Dataset pool = tiny_pool(2);
  NoisySensorSource::Noise noise;
  noise.adc_ber = 0.05;
  noise.adc_bits = 6;
  NoisySensorSource noisy(replay(pool, 4, 3), noise, 7);
  const double full = 63.0;
  bool any_fault = false;
  DatasetReplaySource clean(pool, 4,
                            arrivals(ArrivalKind::kUniform, 1000.0), 3);
  const std::vector<Frame> sclean = drain(clean);
  const std::vector<Frame> snoisy = drain(noisy);
  for (std::size_t i = 0; i < snoisy.size(); ++i) {
    any_fault |= snoisy[i].pixels != sclean[i].pixels;
    for (const float p : snoisy[i].pixels) {
      const double level = static_cast<double>(p) * full;
      EXPECT_NEAR(level, std::round(level), 1e-3)
          << "faulted pixel left the 6-bit ADC grid";
    }
  }
  EXPECT_TRUE(any_fault);
}

TEST(NoisySensorSource, ValidatesParameters) {
  const data::Dataset pool = tiny_pool(2);
  NoisySensorSource::Noise bad;
  bad.adc_bits = 0;
  EXPECT_THROW(NoisySensorSource(replay(pool, 2, 1), bad, 1),
               std::invalid_argument);
  bad = NoisySensorSource::Noise{};
  bad.salt_pepper_prob = 1.5;
  EXPECT_THROW(NoisySensorSource(replay(pool, 2, 1), bad, 1),
               std::invalid_argument);
  EXPECT_THROW(NoisySensorSource(nullptr, NoisySensorSource::Noise{}, 1),
               std::invalid_argument);
}

// ------------------------------------------------------ Backpressure: block

TEST(SensorSession, BlockPolicyDeliversEveryFrameBitIdentically) {
  const data::Dataset pool = tiny_pool(8);
  auto backend = make_engine_backend();

  // Direct reference BEFORE the router exists (the batch former is the
  // sole classify() caller while the server runs).
  constexpr long kFrames = 40;
  DatasetReplaySource ref(pool, kFrames,
                          arrivals(ArrivalKind::kPoisson, 2000.0), 17);
  nn::Tensor batch({static_cast<int>(kFrames), 1, hybrid::kImageSize,
                    hybrid::kImageSize});
  {
    const std::vector<Frame> frames = drain(ref);
    for (std::size_t i = 0; i < frames.size(); ++i) {
      std::copy(frames[i].pixels.begin(), frames[i].pixels.end(),
                batch.data() + i * kPixels);
    }
  }
  const std::vector<runtime::Prediction> reference =
      backend->classify(batch);

  runtime::ServerConfig server_cfg;
  server_cfg.max_batch = 4;
  server_cfg.max_delay_us = 200;
  server_cfg.queue_capacity = 4;  // tiny queue: admission pressure is real
  runtime::ModelRouter router(server_cfg);
  router.register_model("m", backend);

  DatasetReplaySource source(pool, kFrames,
                             arrivals(ArrivalKind::kPoisson, 2000.0), 17);
  SessionConfig cfg;
  cfg.policy = BackpressurePolicy::kBlock;
  cfg.recent_max_age_ms = 50;
  SensorSession session(source, router, "m", cfg);
  session.start();
  const StreamStats stats = session.finish();

  EXPECT_EQ(stats.produced, kFrames);
  EXPECT_EQ(stats.submitted, kFrames);
  EXPECT_EQ(stats.delivered, kFrames);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(stats.degraded, 0);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.labeled, kFrames);
  EXPECT_GT(stats.e2e_ms.p50, 0.0);
  EXPECT_GT(stats.energy_j, 0.0);

  ASSERT_EQ(session.outcomes().size(), static_cast<std::size_t>(kFrames));
  for (const SessionOutcome& o : session.outcomes()) {
    EXPECT_EQ(o.predicted,
              reference[static_cast<std::size_t>(o.sequence)].label)
        << "frame " << o.sequence
        << ": stream path must be bit-identical to direct classify";
    EXPECT_FALSE(o.degraded);
  }

  // The recent-latency window ages out on a quiescent stream, so a past
  // burst can never hold a supervisor's latency trigger hot.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(session.recent_p99_ms(), 0.0);
}

// ------------------------------------------------ Backpressure: drop-oldest

TEST(SensorSession, DropOldestShedsFramesAndBoundsLatency) {
  const data::Dataset pool = tiny_pool(4);
  auto inner = make_engine_backend();
  auto backend = std::make_shared<SlowServable>(
      inner, std::chrono::microseconds(3000));

  runtime::ServerConfig server_cfg;
  server_cfg.max_batch = 1;  // one slow frame per dispatch
  server_cfg.max_delay_us = 0;
  server_cfg.queue_capacity = 2;
  runtime::ModelRouter router(server_cfg);
  router.register_model("m", backend);

  constexpr long kFrames = 60;
  // ~100us between arrivals vs ~3ms+ service: sustained 30x overload.
  DatasetReplaySource source(pool, kFrames,
                             arrivals(ArrivalKind::kUniform, 10000.0), 23);
  SessionConfig cfg;
  cfg.policy = BackpressurePolicy::kDropOldest;
  cfg.max_pending = 3;
  SensorSession session(source, router, "m", cfg);
  session.start();
  const StreamStats stats = session.finish();

  EXPECT_EQ(stats.produced, kFrames);
  EXPECT_GT(stats.dropped, 0) << "30x overload must shed frames";
  EXPECT_EQ(stats.delivered + stats.dropped + stats.failed, kFrames);
  EXPECT_EQ(stats.degraded, 0);  // dropping sheds frames, not precision
  // Everything that survived was really served.
  EXPECT_EQ(static_cast<long>(session.outcomes().size()), stats.delivered);
}

// ---------------------------------------------------- Backpressure: degrade

TEST(SensorSession, DegradePolicyShedsPrecisionAndSupervisorRecovers) {
  const data::Dataset pool = tiny_pool(4);
  // margin 1.0: every frame escalates as far as the cap allows, so rung
  // caps are visible in bits_used.
  auto adaptive = make_adaptive_backend(1.0);
  auto backend = std::make_shared<SlowServable>(
      adaptive, std::chrono::microseconds(2000));
  ASSERT_EQ(backend->max_rung(), 1);

  runtime::ServerConfig server_cfg;
  server_cfg.max_batch = 4;
  server_cfg.max_delay_us = 100;
  server_cfg.queue_capacity = 64;
  runtime::ModelRouter router(server_cfg);
  router.register_model("m", backend);

  constexpr long kFrames = 80;
  DatasetReplaySource source(pool, kFrames,
                             arrivals(ArrivalKind::kUniform, 20000.0), 29);
  SessionConfig cfg;
  cfg.policy = BackpressurePolicy::kDegrade;
  SensorSession session(source, router, "m", cfg);

  SupervisorConfig sup_cfg;
  sup_cfg.high_inflight = 6;
  sup_cfg.low_inflight = 2;
  sup_cfg.hold_ticks = 2;
  sup_cfg.tick_us = 500;
  StreamSupervisor supervisor(backend, sup_cfg);
  supervisor.watch(&session);
  supervisor.start();

  session.start();
  const StreamStats stats = session.finish();

  // The spike forced degradation...
  EXPECT_EQ(stats.delivered, kFrames) << "degrade never sheds frames";
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_GT(stats.degraded, 0) << "20x overload must trigger the supervisor";
  EXPECT_LT(stats.min_rung_cap_seen, 1);
  EXPECT_FALSE(supervisor.events().empty());
  EXPECT_LT(supervisor.min_cap_seen(), supervisor.full_rung());
  bool any_capped_bits = false;
  for (const SessionOutcome& o : session.outcomes()) {
    if (o.degraded) any_capped_bits |= o.bits_used == 3;
  }
  EXPECT_TRUE(any_capped_bits)
      << "capped frames must exit at the cheap rung's precision";

  // ...and with the stream idle, the control loop must walk the cap back
  // to the full ladder on its own.
  const auto deadline =
      runtime::ServeClock::now() + std::chrono::seconds(5);
  while (supervisor.cap() < supervisor.full_rung() &&
         runtime::ServeClock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(supervisor.cap(), supervisor.full_rung())
      << "cap must recover after the load spike subsides";
  EXPECT_EQ(backend->max_rung(), supervisor.full_rung());
  supervisor.stop();
}

// --------------------------------------------------------- queue depth view

TEST(RouterQueueDepth, TracksWaitingRequestsAndDrains) {
  const data::Dataset pool = tiny_pool(4);
  auto backend = std::make_shared<SlowServable>(
      make_engine_backend(), std::chrono::microseconds(10000));

  runtime::ServerConfig server_cfg;
  server_cfg.max_batch = 1;  // one slow frame per dispatch: a queue forms
  server_cfg.max_delay_us = 0;
  server_cfg.queue_capacity = 16;
  runtime::ModelRouter router(server_cfg);
  router.register_model("m", backend);
  EXPECT_EQ(router.queue_depth("m"), 0u);
  EXPECT_THROW((void)router.queue_depth("nope"), std::out_of_range);

  std::vector<std::future<runtime::Prediction>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(router.submit("m", pool.images.data()));
  }
  // With ~10ms per dispatched frame, the later submissions must be
  // observably parked in the admission queue.
  std::size_t deepest = 0;
  const auto deadline =
      runtime::ServeClock::now() + std::chrono::seconds(5);
  while (deepest == 0 && runtime::ServeClock::now() < deadline) {
    deepest = std::max(deepest, router.queue_depth("m"));
  }
  EXPECT_GE(deepest, 1u);

  for (auto& f : futures) (void)f.get();
  EXPECT_EQ(router.queue_depth("m"), 0u);
}

// ---------------------------------------------------------- Supervisor unit

TEST(StreamSupervisor, DegradesStepwiseAndRecoversWithHysteresis) {
  auto ladder = std::make_shared<FakeLadder>(2);
  SupervisorConfig cfg;
  cfg.high_inflight = 10;
  cfg.low_inflight = 2;
  cfg.hold_ticks = 3;
  StreamSupervisor supervisor(ladder, cfg);
  FakeSignal signal;
  supervisor.watch(&signal);
  ASSERT_EQ(supervisor.full_rung(), 2);

  // Overload: one rung per tick, floored at 0.
  signal.set(50);
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 1);
  EXPECT_EQ(ladder->max_rung(), 1);
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 0);
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 0);  // floor holds
  EXPECT_EQ(supervisor.min_cap_seen(), 0);

  // Between the watermarks: hold, and keep resetting the calm counter.
  signal.set(5);
  for (int i = 0; i < 6; ++i) supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 0);

  // Calm: each recovery step needs hold_ticks consecutive calm ticks.
  signal.set(1);
  supervisor.tick();
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 0);  // 2 < hold_ticks
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 1);
  supervisor.tick();
  supervisor.tick();
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 2);
  EXPECT_EQ(ladder->max_rung(), 2);
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 2);  // full ladder is the ceiling

  // A calm streak interrupted by a hot tick must start over.
  signal.set(50);
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 1);
  signal.set(1);
  supervisor.tick();
  supervisor.tick();
  signal.set(5);  // between watermarks: resets the streak
  supervisor.tick();
  signal.set(1);
  supervisor.tick();
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 1);  // streak restarted, not yet recovered
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 2);

  // The event log saw every change, most recent last.
  const std::vector<SupervisorEvent> events = supervisor.events();
  ASSERT_FALSE(events.empty());
  for (const SupervisorEvent& e : events) {
    EXPECT_EQ(std::abs(e.new_cap - e.old_cap), 1);
  }
}

TEST(StreamSupervisor, LatencyTriggerDegradesEvenWhenQueueIsShallow) {
  auto ladder = std::make_shared<FakeLadder>(1);
  SupervisorConfig cfg;
  cfg.high_inflight = 100;
  cfg.low_inflight = 10;
  cfg.high_p99_ms = 5.0;
  cfg.hold_ticks = 1;
  StreamSupervisor supervisor(ladder, cfg);
  FakeSignal signal;
  supervisor.watch(&signal);

  signal.set(0, 50.0);  // shallow queue, terrible tail latency
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 0);

  signal.set(0, 1.0);
  supervisor.tick();
  EXPECT_EQ(supervisor.cap(), 1);
}

TEST(StreamSupervisor, StopRestoresTheFullLadder) {
  auto ladder = std::make_shared<FakeLadder>(2);
  SupervisorConfig cfg;
  cfg.high_inflight = 10;
  cfg.low_inflight = 2;
  StreamSupervisor supervisor(ladder, cfg);
  FakeSignal signal;
  supervisor.watch(&signal);
  signal.set(100);
  supervisor.tick();
  supervisor.tick();
  ASSERT_EQ(ladder->max_rung(), 0);
  supervisor.stop();
  EXPECT_EQ(ladder->max_rung(), 2);
  EXPECT_EQ(supervisor.min_cap_seen(), 0);  // history survives stop()
}

// ------------------------------------------------------------- validation

TEST(SensorStreamConfig, ValidatesAndParses) {
  EXPECT_EQ(policy_from_string("block"), BackpressurePolicy::kBlock);
  EXPECT_EQ(policy_from_string("drop-oldest"),
            BackpressurePolicy::kDropOldest);
  EXPECT_EQ(policy_from_string("degrade"), BackpressurePolicy::kDegrade);
  EXPECT_THROW((void)policy_from_string("degrade-hard"),
               std::invalid_argument);
  EXPECT_EQ(to_string(BackpressurePolicy::kDropOldest), "drop-oldest");

  EXPECT_EQ(arrival_from_string("bursty"), ArrivalKind::kBursty);
  EXPECT_THROW((void)arrival_from_string("sinusoid"),
               std::invalid_argument);

  SessionConfig session_cfg;
  session_cfg.max_pending = 0;
  EXPECT_THROW(session_cfg.validate(), std::invalid_argument);

  SupervisorConfig sup_cfg;
  sup_cfg.low_inflight = 64;
  sup_cfg.high_inflight = 64;
  EXPECT_THROW(sup_cfg.validate(), std::invalid_argument);
  EXPECT_THROW(StreamSupervisor(nullptr, SupervisorConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace scbnn::sensor
