// Percentile helper tests: the edge cases every latency report depends on
// (empty and single samples, ties, interpolation between ranks, clamped p)
// and the summarize_latencies digest.
#include "runtime/percentile.h"

#include <gtest/gtest.h>

#include <vector>

namespace scbnn::runtime {
namespace {

TEST(Percentile, EmptySampleYieldsZero) {
  const std::vector<double> empty;
  EXPECT_EQ(percentile(empty, 0.0), 0.0);
  EXPECT_EQ(percentile(empty, 50.0), 0.0);
  EXPECT_EQ(percentile(empty, 99.0), 0.0);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  const std::vector<double> one = {3.25};
  EXPECT_EQ(percentile(one, 0.0), 3.25);
  EXPECT_EQ(percentile(one, 50.0), 3.25);
  EXPECT_EQ(percentile(one, 99.0), 3.25);
  EXPECT_EQ(percentile(one, 100.0), 3.25);
}

TEST(Percentile, AllTiesYieldTheTiedValue) {
  const std::vector<double> ties(17, 7.5);
  EXPECT_EQ(percentile(ties, 1.0), 7.5);
  EXPECT_EQ(percentile(ties, 50.0), 7.5);
  EXPECT_EQ(percentile(ties, 99.0), 7.5);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 75.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(sorted, 100.0), 10.0);
}

TEST(Percentile, ExactRanksOfAnOddSample) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 100.0), 5.0);
}

TEST(Percentile, OutOfRangePIsClamped) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 250.0), 3.0);
}

TEST(Percentile, PartialTiesPlateau) {
  // Half the sample is tied at 2.0: the median sits inside the plateau.
  const std::vector<double> sorted = {1.0, 2.0, 2.0, 2.0, 9.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, 50.0), 2.0);
}

TEST(SummarizeLatencies, SortsACopyAndFillsTheDigest) {
  const std::vector<double> unsorted = {9.0, 1.0, 5.0, 3.0, 7.0};
  const LatencySummary s = summarize_latencies(unsorted);
  EXPECT_EQ(s.samples, 5);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_GE(s.p99, s.p95);
  EXPECT_GE(s.p95, s.p50);
}

TEST(SummarizeLatencies, EmptyDigestIsAllZero) {
  const LatencySummary s = summarize_latencies({});
  EXPECT_EQ(s.samples, 0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

}  // namespace
}  // namespace scbnn::runtime
