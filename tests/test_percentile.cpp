// Percentile helper tests: the edge cases every latency report depends on
// (empty and single samples, ties, interpolation between ranks, clamped p),
// the summarize_latencies digest, and the mergeable LatencyHistogram — in
// particular that merging per-shard histograms answers percentiles within
// one bucket width of pooling the raw samples, which is what licenses the
// fleet's cross-process p99s.
#include "runtime/percentile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace scbnn::runtime {
namespace {

TEST(Percentile, EmptySampleYieldsZero) {
  const std::vector<double> empty;
  EXPECT_EQ(percentile(empty, 0.0), 0.0);
  EXPECT_EQ(percentile(empty, 50.0), 0.0);
  EXPECT_EQ(percentile(empty, 99.0), 0.0);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  const std::vector<double> one = {3.25};
  EXPECT_EQ(percentile(one, 0.0), 3.25);
  EXPECT_EQ(percentile(one, 50.0), 3.25);
  EXPECT_EQ(percentile(one, 99.0), 3.25);
  EXPECT_EQ(percentile(one, 100.0), 3.25);
}

TEST(Percentile, AllTiesYieldTheTiedValue) {
  const std::vector<double> ties(17, 7.5);
  EXPECT_EQ(percentile(ties, 1.0), 7.5);
  EXPECT_EQ(percentile(ties, 50.0), 7.5);
  EXPECT_EQ(percentile(ties, 99.0), 7.5);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 75.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(sorted, 100.0), 10.0);
}

TEST(Percentile, ExactRanksOfAnOddSample) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 100.0), 5.0);
}

TEST(Percentile, OutOfRangePIsClamped) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(sorted, 250.0), 3.0);
}

TEST(Percentile, PartialTiesPlateau) {
  // Half the sample is tied at 2.0: the median sits inside the plateau.
  const std::vector<double> sorted = {1.0, 2.0, 2.0, 2.0, 9.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(sorted, 50.0), 2.0);
}

TEST(SummarizeLatencies, SortsACopyAndFillsTheDigest) {
  const std::vector<double> unsorted = {9.0, 1.0, 5.0, 3.0, 7.0};
  const LatencySummary s = summarize_latencies(unsorted);
  EXPECT_EQ(s.samples, 5);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_GE(s.p99, s.p95);
  EXPECT_GE(s.p95, s.p50);
}

TEST(SummarizeLatencies, EmptyDigestIsAllZero) {
  const LatencySummary s = summarize_latencies({});
  EXPECT_EQ(s.samples, 0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

// One bucket width in relative terms: adjacent bucket edges are a factor of
// 2^(1/kBucketsPerOctave) apart.
constexpr double kBucketWidthFactor = 1.0905077326652577;  // 2^(1/8)

TEST(LatencyHistogram, EmptyIsAllZero) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.min_ms(), 0.0);
  EXPECT_EQ(h.max_ms(), 0.0);
  EXPECT_EQ(h.mean_ms(), 0.0);
}

TEST(LatencyHistogram, SingleSampleIsEveryPercentile) {
  LatencyHistogram h;
  h.record(3.25);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min_ms(), 3.25);
  EXPECT_DOUBLE_EQ(h.max_ms(), 3.25);
  // With one sample the interpolation edges clamp to min == max.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 3.25);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 3.25);
}

TEST(LatencyHistogram, BucketGridIsMonotoneAndCoversTheRange) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0.0), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::kMinMs / 2), 0);
  EXPECT_EQ(LatencyHistogram::bucket_of(1e9),
            LatencyHistogram::kBuckets - 1);
  int prev = 0;
  for (double ms = LatencyHistogram::kMinMs; ms < 1e5; ms *= 1.05) {
    const int b = LatencyHistogram::bucket_of(ms);
    EXPECT_GE(b, prev);
    EXPECT_LT(b, LatencyHistogram::kBuckets);
    // The sample lies inside its bucket's [floor, next floor) span.
    EXPECT_GE(ms, LatencyHistogram::bucket_floor_ms(b) * (1.0 - 1e-12));
    if (b + 1 < LatencyHistogram::kBuckets) {
      EXPECT_LT(ms, LatencyHistogram::bucket_floor_ms(b + 1) *
                        (1.0 + 1e-12));
    }
    prev = b;
  }
}

TEST(LatencyHistogram, PercentileWithinOneBucketWidthOfExact) {
  std::mt19937_64 rng(99);
  std::lognormal_distribution<double> lat(1.5, 0.9);  // ~ms-scale tail
  LatencyHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) {
    const double ms = lat(rng);
    h.record(ms);
    samples.push_back(ms);
  }
  std::sort(samples.begin(), samples.end());
  for (const double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    const double exact = percentile(samples, p);
    const double approx = h.percentile(p);
    EXPECT_LE(approx, exact * kBucketWidthFactor) << "p" << p;
    EXPECT_GE(approx, exact / kBucketWidthFactor) << "p" << p;
  }
}

TEST(LatencyHistogram, MergeEqualsPooledSamplesWithinOneBucketWidth) {
  // The fleet use case: shards record disjoint shares of one latency
  // population; merging their histograms must answer like pooling the raw
  // samples. The merged histogram is bit-identical to one fed all samples
  // (same grid, addition commutes), and both sit within one bucket width
  // of the exact pooled-sample percentile.
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> fast(0.5, 0.4);
  std::lognormal_distribution<double> slow(2.5, 0.7);
  LatencyHistogram shard_a;
  LatencyHistogram shard_b;
  LatencyHistogram pooled_hist;
  std::vector<double> pooled;
  for (int i = 0; i < 1500; ++i) {
    const double a = fast(rng);
    const double b = slow(rng);
    shard_a.record(a);
    shard_b.record(b);
    pooled_hist.record(a);
    pooled_hist.record(b);
    pooled.push_back(a);
    pooled.push_back(b);
  }
  std::sort(pooled.begin(), pooled.end());

  LatencyHistogram merged = shard_a;
  merged.merge(shard_b);
  EXPECT_EQ(merged.count(), pooled.size());
  EXPECT_DOUBLE_EQ(merged.min_ms(), pooled.front());
  EXPECT_DOUBLE_EQ(merged.max_ms(), pooled.back());
  EXPECT_DOUBLE_EQ(merged.sum_ms(), shard_a.sum_ms() + shard_b.sum_ms());

  for (const double p : {25.0, 50.0, 90.0, 99.0}) {
    // Merging loses nothing vs recording everything into one histogram...
    EXPECT_DOUBLE_EQ(merged.percentile(p), pooled_hist.percentile(p))
        << "p" << p;
    // ...and the histogram answer tracks the exact pooled samples within
    // one bucket width.
    const double exact = percentile(pooled, p);
    EXPECT_LE(merged.percentile(p), exact * kBucketWidthFactor) << "p" << p;
    EXPECT_GE(merged.percentile(p), exact / kBucketWidthFactor) << "p" << p;
  }
}

TEST(LatencyHistogram, MergingAnEmptyHistogramIsIdentity) {
  LatencyHistogram h;
  h.record(1.0);
  h.record(2.0);
  const double before = h.percentile(50.0);
  LatencyHistogram empty;
  h.merge(empty);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), before);

  LatencyHistogram onto_empty;
  onto_empty.merge(h);
  EXPECT_EQ(onto_empty.count(), 2u);
  EXPECT_DOUBLE_EQ(onto_empty.min_ms(), 1.0);
  EXPECT_DOUBLE_EQ(onto_empty.max_ms(), 2.0);
}

}  // namespace
}  // namespace scbnn::runtime
