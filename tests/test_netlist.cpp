// Structural netlist tests: the tape-out-style equivalence checks proving
// the gate-level circuits match the behavioral SC models bit-for-bit, plus
// Verilog-export sanity.
#include "hw/netlist.h"

#include <gtest/gtest.h>

#include <random>

#include "hw/gate_model.h"
#include "sc/adder_tree.h"
#include "sc/lowdisc.h"
#include "sc/sng.h"
#include "sc/bitstream.h"
#include "sc/tff.h"

namespace scbnn::hw {
namespace {

sc::Bitstream random_stream(std::size_t n, double p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution bit(p);
  sc::Bitstream s(n);
  for (std::size_t i = 0; i < n; ++i) s.set_bit(i, bit(rng));
  return s;
}

TEST(Netlist, GateArityChecked) {
  Netlist nl;
  const int a = nl.add_input("a");
  EXPECT_THROW((void)nl.add_gate(GateOp::kAnd, {a}), std::invalid_argument);
  EXPECT_THROW((void)nl.add_gate(GateOp::kNot, {a, a}),
               std::invalid_argument);
  EXPECT_THROW((void)nl.add_gate(GateOp::kAnd, {a, 99}),
               std::invalid_argument);
  EXPECT_THROW(nl.mark_output(99, "z"), std::invalid_argument);
}

TEST(Netlist, CombinationalGates) {
  Netlist nl;
  const int a = nl.add_input("a");
  const int b = nl.add_input("b");
  nl.mark_output(nl.add_gate(GateOp::kAnd, {a, b}), "and_o");
  nl.mark_output(nl.add_gate(GateOp::kOr, {a, b}), "or_o");
  nl.mark_output(nl.add_gate(GateOp::kXor, {a, b}), "xor_o");
  nl.mark_output(nl.add_gate(GateOp::kNot, {a}), "not_o");
  NetlistSimulator sim(nl);
  const auto out = sim.step({true, false});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
  EXPECT_TRUE(out[2]);
  EXPECT_FALSE(out[3]);
}

TEST(Netlist, MuxSelectSemantics) {
  Netlist nl;
  const int sel = nl.add_input("sel");
  const int a = nl.add_input("a");
  const int b = nl.add_input("b");
  nl.mark_output(nl.add_gate(GateOp::kMux, {sel, a, b}), "z");
  NetlistSimulator sim(nl);
  EXPECT_TRUE(sim.step({false, true, false})[0]);   // sel=0 -> a
  EXPECT_FALSE(sim.step({true, true, false})[0]);   // sel=1 -> b
}

TEST(Netlist, DffDelaysByOneCycle) {
  Netlist nl;
  const int d = nl.add_input("d");
  nl.mark_output(nl.add_gate(GateOp::kDff, {d}, "q", false), "q");
  NetlistSimulator sim(nl);
  EXPECT_FALSE(sim.step({true})[0]);   // initial state
  EXPECT_TRUE(sim.step({false})[0]);   // captured last cycle's 1
  EXPECT_FALSE(sim.step({false})[0]);
}

TEST(Netlist, TffTogglePreToggleOutput) {
  Netlist nl;
  const int t = nl.add_input("t");
  nl.mark_output(nl.add_gate(GateOp::kTff, {t}, "q", false), "q");
  NetlistSimulator sim(nl);
  EXPECT_FALSE(sim.step({true})[0]);   // outputs state BEFORE toggling
  EXPECT_TRUE(sim.step({true})[0]);
  EXPECT_FALSE(sim.step({false})[0]);  // no toggle on 0
  EXPECT_FALSE(sim.step({true})[0]);
}

TEST(Netlist, ResetRestoresInitialState) {
  Netlist nl;
  const int t = nl.add_input("t");
  nl.mark_output(nl.add_gate(GateOp::kTff, {t}, "q", true), "q");
  NetlistSimulator sim(nl);
  EXPECT_TRUE(sim.step({true})[0]);
  EXPECT_FALSE(sim.step({true})[0]);
  sim.reset();
  EXPECT_TRUE(sim.step({true})[0]);
}

class TffAdderEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TffAdderEquivalence, StructuralMatchesBehavioralBitForBit) {
  const int seed = GetParam();
  for (bool s0 : {false, true}) {
    const Netlist nl = build_tff_adder_netlist(s0);
    NetlistSimulator sim(nl);
    const auto x = random_stream(512, 0.37, static_cast<std::uint64_t>(seed));
    const auto y =
        random_stream(512, 0.81, static_cast<std::uint64_t>(seed) + 100);
    const sc::Bitstream expected = sc::tff_add_serial(x, y, s0);
    for (std::size_t t = 0; t < x.length(); ++t) {
      const auto out = sim.step({x.bit(t), y.bit(t)});
      ASSERT_EQ(out[0], expected.bit(t))
          << "cycle " << t << " s0=" << s0 << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TffAdderEquivalence,
                         ::testing::Values(1, 2, 3, 4));

TEST(NetlistBuilders, HalverMatchesBehavioral) {
  const Netlist nl = build_tff_halver_netlist(false);
  NetlistSimulator sim(nl);
  const auto a = random_stream(512, 0.6, 9);
  const sc::Bitstream expected = sc::tff_halve(a, false);
  for (std::size_t t = 0; t < a.length(); ++t) {
    ASSERT_EQ(sim.step({a.bit(t)})[0], expected.bit(t)) << "cycle " << t;
  }
}

TEST(NetlistBuilders, TreeMatchesBehavioralAlternatingPolicy) {
  const unsigned leaves = 8;
  const Netlist nl = build_tff_tree_netlist(leaves);
  NetlistSimulator sim(nl);
  std::vector<sc::Bitstream> inputs;
  for (unsigned i = 0; i < leaves; ++i) {
    inputs.push_back(random_stream(256, 0.1 + 0.1 * i, 40 + i));
  }
  const sc::Bitstream expected =
      sc::tff_adder_tree(inputs, sc::TffInitPolicy::kAlternating);
  for (std::size_t t = 0; t < 256; ++t) {
    std::vector<bool> in;
    in.reserve(leaves);
    for (const auto& s : inputs) in.push_back(s.bit(t));
    ASSERT_EQ(sim.step(in)[0], expected.bit(t)) << "cycle " << t;
  }
}

TEST(NetlistBuilders, TreeValidatesLeafCount) {
  EXPECT_THROW((void)build_tff_tree_netlist(3), std::invalid_argument);
  EXPECT_THROW((void)build_tff_tree_netlist(1), std::invalid_argument);
}

TEST(NetlistBuilders, MuxAdderMatchesGateFunction) {
  const Netlist nl = build_mux_adder_netlist();
  NetlistSimulator sim(nl);
  // Exhaustive truth table.
  for (int x = 0; x <= 1; ++x) {
    for (int y = 0; y <= 1; ++y) {
      for (int s = 0; s <= 1; ++s) {
        const auto out = sim.step({x != 0, y != 0, s != 0});
        EXPECT_EQ(out[0], s != 0 ? y != 0 : x != 0);
      }
    }
  }
}

TEST(NetlistCosts, TffAdderGateBudget) {
  const Netlist nl = build_tff_adder_netlist();
  EXPECT_EQ(nl.count(GateOp::kXor), 1u);
  EXPECT_EQ(nl.count(GateOp::kMux), 1u);
  EXPECT_EQ(nl.count(GateOp::kTff), 1u);
  // One XOR + one MUX + one TFF: matches the tff_adder_node() GE figure.
  EXPECT_DOUBLE_EQ(nl.gate_equivalents(), ge::tff_adder_node());
}

TEST(NetlistCosts, TreeGateCountScalesWithNodes) {
  const Netlist nl = build_tff_tree_netlist(32);
  EXPECT_EQ(nl.count(GateOp::kTff), 31u);  // one per 2:1 node
  EXPECT_EQ(nl.count(GateOp::kMux), 31u);
}

TEST(DotUnitNetlist, ValidatesParameters) {
  EXPECT_THROW((void)build_dot_unit_netlist(3, 5), std::invalid_argument);
  EXPECT_THROW((void)build_dot_unit_netlist(4, 0), std::invalid_argument);
  EXPECT_THROW((void)build_dot_unit_netlist(4, 17), std::invalid_argument);
}

TEST(DotUnitNetlist, StructuralGateBudget) {
  const Netlist nl = build_dot_unit_netlist(32, 9);
  // 64 product ANDs + 62 tree nodes (1 TFF each) + 2 counters (9 TFFs each).
  EXPECT_EQ(nl.count(GateOp::kTff), 62u + 18u);
  EXPECT_EQ(nl.count(GateOp::kMux), 62u);
  EXPECT_EQ(nl.input_count(), 96u);
}

TEST(DotUnitNetlist, MatchesBehavioralDotProductBitExactly) {
  // The full Fig. 3 unit at 4-bit precision (N = 16 cycles), fan-in 4:
  // drive the netlist with the exact streams the behavioral library
  // composes, and require identical counter values and sign.
  const unsigned bits = 4;
  const std::size_t n = 16;
  const unsigned fan_in = 4;
  const unsigned count_bits = 5;  // holds counts up to 16

  for (int variant = 0; variant < 6; ++variant) {
    // Behavioral path: ramp inputs x VdC weights -> AND -> TFF tree.
    std::vector<sc::Bitstream> xs, wps, wns;
    std::vector<sc::Bitstream> pos_products, neg_products;
    for (unsigned i = 0; i < fan_in; ++i) {
      const std::size_t xl = (3 + 4 * i + variant) % (n + 1);
      const std::size_t wpl = (11 * i + 2 * variant) % (n + 1);
      const std::size_t wnl = (7 * i + variant) % (n + 1);
      xs.push_back(sc::Bitstream::prefix_ones(n, xl));
      sc::VanDerCorputSource vdc(bits);
      wps.push_back(sc::generate_stream(
          vdc, static_cast<std::uint32_t>(wpl), n));
      vdc.reset();
      wns.push_back(sc::generate_stream(
          vdc, static_cast<std::uint32_t>(wnl), n));
      pos_products.push_back(xs.back() & wps.back());
      neg_products.push_back(xs.back() & wns.back());
    }
    const std::size_t pos_expected =
        sc::tff_adder_tree(pos_products, sc::TffInitPolicy::kAlternating)
            .count_ones();
    const std::size_t neg_expected =
        sc::tff_adder_tree(neg_products, sc::TffInitPolicy::kAlternating)
            .count_ones();

    // Structural path.
    const Netlist nl = build_dot_unit_netlist(fan_in, count_bits);
    NetlistSimulator sim(nl);
    std::vector<bool> out;
    for (std::size_t t = 0; t < n; ++t) {
      std::vector<bool> in;
      for (unsigned i = 0; i < fan_in; ++i) in.push_back(xs[i].bit(t));
      for (unsigned i = 0; i < fan_in; ++i) in.push_back(wps[i].bit(t));
      for (unsigned i = 0; i < fan_in; ++i) in.push_back(wns[i].bit(t));
      out = sim.step(in);
    }
    // One flush cycle with zero inputs exposes the final counter state.
    out = sim.step(std::vector<bool>(3 * fan_in, false));

    auto read_count = [&](std::size_t base) {
      std::size_t v = 0;
      for (unsigned i = 0; i < count_bits; ++i) {
        if (out[base + i]) v |= std::size_t{1} << i;
      }
      return v;
    };
    const std::size_t pos_count = read_count(2);
    const std::size_t neg_count = read_count(2 + count_bits);
    ASSERT_EQ(pos_count, pos_expected) << "variant " << variant;
    ASSERT_EQ(neg_count, neg_expected) << "variant " << variant;
    // Sign outputs agree with the counts.
    EXPECT_EQ(out[0], pos_count > neg_count) << "variant " << variant;
    EXPECT_EQ(out[1], neg_count > pos_count) << "variant " << variant;
  }
}

TEST(DotUnitNetlist, ExportsToVerilog) {
  const Netlist nl = build_dot_unit_netlist(4, 5);
  const std::string v = nl.to_verilog("sc_dot_unit");
  EXPECT_NE(v.find("module sc_dot_unit("), std::string::npos);
  EXPECT_NE(v.find("output wire pos_gt"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, ExportContainsStructure) {
  const Netlist nl = build_tff_adder_netlist();
  const std::string v = nl.to_verilog("tff_adder");
  EXPECT_NE(v.find("module tff_adder("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input wire x"), std::string::npos);
  EXPECT_NE(v.find("output wire z"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk"), std::string::npos);
  EXPECT_NE(v.find("^"), std::string::npos);  // the XOR compare
}

TEST(Verilog, RegistersGetResetValues) {
  const std::string v0 = build_tff_adder_netlist(false).to_verilog("a");
  const std::string v1 = build_tff_adder_netlist(true).to_verilog("a");
  EXPECT_NE(v0.find("<= 1'b0;"), std::string::npos);
  EXPECT_NE(v1.find("<= 1'b1;"), std::string::npos);
}

}  // namespace
}  // namespace scbnn::hw
