// Tests for the exhaustive MSE harness (Tables 1 and 2). The quantitative
// claims checked here are the paper's orderings and magnitudes.
#include "sc/mse.h"

#include <gtest/gtest.h>

#include "hw/report.h"

namespace scbnn::sc {
namespace {

TEST(MultiplierMse, NewAdderConfigurationIsBestAt8Bit) {
  // Table 1 ordering: shared-LFSR worst, ramp + low-discrepancy best.
  const double shared = multiplier_mse(MultScheme::kOneLfsrShifted, 8).mse;
  const double two = multiplier_mse(MultScheme::kTwoLfsrs, 8).mse;
  const double ld = multiplier_mse(MultScheme::kLowDiscrepancy, 8).mse;
  const double ramp = multiplier_mse(MultScheme::kRampPlusLowDiscrepancy, 8).mse;
  EXPECT_GT(shared, two);
  EXPECT_GT(two, ld);
  EXPECT_GE(ld, ramp * 0.9);  // ld and ramp are close; ramp at least as good
}

TEST(MultiplierMse, MagnitudesMatchPaperTable1At8Bit) {
  // Within an order of magnitude of the published values.
  using P = hw::PaperTables12;
  const MultScheme schemes[] = {
      MultScheme::kOneLfsrShifted, MultScheme::kTwoLfsrs,
      MultScheme::kLowDiscrepancy, MultScheme::kRampPlusLowDiscrepancy};
  for (int row = 0; row < 4; ++row) {
    const double mse = multiplier_mse(schemes[row], 8).mse;
    EXPECT_GT(mse, P::kMultMse[row][0] / 10.0) << "row " << row;
    EXPECT_LT(mse, P::kMultMse[row][0] * 10.0) << "row " << row;
  }
}

TEST(MultiplierMse, FourBitWorseThanEightBit) {
  for (MultScheme s : {MultScheme::kTwoLfsrs, MultScheme::kLowDiscrepancy,
                       MultScheme::kRampPlusLowDiscrepancy}) {
    EXPECT_GT(multiplier_mse(s, 4).mse, multiplier_mse(s, 8).mse);
  }
}

TEST(MultiplierMse, CaseCountIsExhaustive) {
  const auto r = multiplier_mse(MultScheme::kRampPlusLowDiscrepancy, 4);
  EXPECT_EQ(r.cases, 17u * 17u);  // (2^4 + 1)^2 input pairs
}

TEST(AdderMse, NewAdderBeatsEveryOldConfiguration) {
  // The paper's core Table 2 claim, at both precisions.
  for (unsigned bits : {4u, 8u}) {
    const double new_mse = adder_mse(AddScheme::kTffAdder, bits).mse;
    for (AddScheme s : {AddScheme::kMuxRandomDataLfsrSelect,
                        AddScheme::kMuxRandomDataTffSelect,
                        AddScheme::kMuxLfsrDataTffSelect}) {
      EXPECT_LT(new_mse, adder_mse(s, bits).mse)
          << "bits=" << bits << " scheme=" << to_string(s);
    }
  }
}

TEST(AdderMse, NewAdderTwoOrdersBetterAt8Bit) {
  const double new_mse = adder_mse(AddScheme::kTffAdder, 8).mse;
  const double best_old = adder_mse(AddScheme::kMuxLfsrDataTffSelect, 8).mse;
  EXPECT_LT(new_mse * 50.0, best_old);
}

TEST(AdderMse, NewAdderMatchesPaperClosely) {
  // The TFF adder is deterministic: its MSE is a pure rounding statistic
  // and should match the published 1.91e-6 / 4.88e-4 almost exactly.
  EXPECT_NEAR(adder_mse(AddScheme::kTffAdder, 8).mse, 1.91e-6, 0.2e-6);
  EXPECT_NEAR(adder_mse(AddScheme::kTffAdder, 4).mse, 4.88e-4, 0.2e-4);
}

TEST(AdderMse, NewAdderMaxErrorIsHalfUlp) {
  for (unsigned bits : {2u, 4u, 6u, 8u}) {
    const double n = static_cast<double>(1u << bits);
    EXPECT_LE(adder_mse(AddScheme::kTffAdder, bits).max_abs_error,
              0.5 / n + 1e-12)
        << "bits=" << bits;
  }
}

TEST(AdderMse, LongerStreamsReduceError) {
  const double short_mse = adder_mse(AddScheme::kMuxLfsrDataTffSelect, 8, 64).mse;
  const double long_mse =
      adder_mse(AddScheme::kMuxLfsrDataTffSelect, 8, 1024).mse;
  EXPECT_LT(long_mse, short_mse);
}

TEST(MseHarness, SchemeNamesAreDistinct) {
  EXPECT_NE(to_string(MultScheme::kOneLfsrShifted),
            to_string(MultScheme::kTwoLfsrs));
  EXPECT_NE(to_string(AddScheme::kTffAdder),
            to_string(AddScheme::kMuxLfsrDataTffSelect));
}

class MsePrecisionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MsePrecisionSweep, TffAdderMseShrinksQuadratically) {
  const unsigned bits = GetParam();
  // Error is uniformly within half an output ULP, so MSE <= (0.5/N)^2.
  const double n = static_cast<double>(1u << bits);
  const auto r = adder_mse(AddScheme::kTffAdder, bits);
  EXPECT_LE(r.mse, 0.25 / (n * n) + 1e-12);
  EXPECT_GT(r.mse, 0.0);  // some inputs do round
}

INSTANTIATE_TEST_SUITE_P(Bits, MsePrecisionSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace scbnn::sc
