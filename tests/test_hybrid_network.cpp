// Hybrid network assembly and the retraining pipeline (scaled down).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <future>
#include <vector>

#include "data/synthetic_mnist.h"
#include "hybrid/experiment.h"
#include "hybrid/hybrid_network.h"
#include "runtime/backend_registry.h"
#include "runtime/server.h"
#include "nn/conv2d.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace scbnn::hybrid {
namespace {

LeNetConfig tiny_lenet() {
  LeNetConfig cfg;
  cfg.conv1_kernels = 8;
  cfg.conv2_kernels = 8;
  cfg.dense_units = 32;
  cfg.dropout = 0.1f;
  return cfg;
}

TEST(LeNetBuilder, ShapesFlowEndToEnd) {
  nn::Rng rng(1);
  nn::Network net = build_lenet(tiny_lenet(), rng);
  nn::Tensor x({2, 1, 28, 28});
  nn::Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 10}));
}

TEST(LeNetBuilder, TailConsumesFirstLayerFeatures) {
  nn::Rng rng(2);
  nn::Network tail = build_tail(tiny_lenet(), rng);
  nn::Tensor feats({2, 8, 28, 28});
  nn::Tensor y = tail.forward(feats, false);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 10}));
}

TEST(LeNetBuilder, TailHasTwoFewerParamTensors) {
  nn::Rng rng(3);
  nn::Network base = build_lenet(tiny_lenet(), rng);
  nn::Network tail = build_tail(tiny_lenet(), rng);
  EXPECT_EQ(base.params().size(), tail.params().size() + 2);
}

TEST(CopyTailParams, TransfersExactly) {
  nn::Rng rng(4);
  nn::Network base = build_lenet(tiny_lenet(), rng);
  nn::Network tail = build_tail(tiny_lenet(), rng);
  copy_tail_params(base, tail);
  const auto bp = base.params();
  const auto tp = tail.params();
  for (std::size_t i = 0; i < tp.size(); ++i) {
    for (std::size_t j = 0; j < tp[i].value->size(); ++j) {
      EXPECT_EQ((*tp[i].value)[j], (*bp[i + 2].value)[j]);
    }
  }
}

TEST(CopyTailParams, RejectsMismatchedTopology) {
  nn::Rng rng(5);
  nn::Network base = build_lenet(tiny_lenet(), rng);
  LeNetConfig other = tiny_lenet();
  other.conv2_kernels = 4;
  nn::Network tail = build_tail(other, rng);
  EXPECT_THROW(copy_tail_params(base, tail), std::invalid_argument);
}

TEST(BaseConv1Weights, ExposesFirstLayer) {
  nn::Rng rng(6);
  nn::Network base = build_lenet(tiny_lenet(), rng);
  const nn::Tensor& w = base_conv1_weights(base);
  EXPECT_EQ(w.shape(), (std::vector<int>{8, 1, 5, 5}));
}

TEST(HybridNetwork, EndToEndPredictShape) {
  nn::Rng rng(7);
  const auto cfg = tiny_lenet();
  nn::Network base = build_lenet(cfg, rng);
  const auto qw = nn::quantize_conv_weights(base_conv1_weights(base), 6);
  FirstLayerConfig flc;
  flc.bits = 6;
  auto engine =
      make_first_layer_engine(FirstLayerDesign::kBinaryQuantized, qw, flc);
  nn::Network tail = build_tail(cfg, rng);
  copy_tail_params(base, tail);
  HybridNetwork hybrid(std::move(engine), std::move(tail));

  const data::DataSplit split = data::generate_synthetic_mnist(6, 1, 21);
  const auto pred = hybrid.predict(split.train.images);
  EXPECT_EQ(pred.size(), 6u);
  for (int p : pred) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 10);
  }
}

TEST(HybridNetwork, NullEngineRejected) {
  nn::Rng rng(8);
  EXPECT_THROW(HybridNetwork(nullptr, build_tail(tiny_lenet(), rng)),
               std::invalid_argument);
}

TEST(HybridNetwork, IsServableBehindTheRequestServer) {
  nn::Rng rng(7);
  const auto cfg = tiny_lenet();
  nn::Network base = build_lenet(cfg, rng);
  const auto qw = nn::quantize_conv_weights(base_conv1_weights(base), 6);
  FirstLayerConfig flc;
  flc.bits = 6;
  auto engine =
      make_first_layer_engine(FirstLayerDesign::kBinaryQuantized, qw, flc);
  nn::Network tail = build_tail(cfg, rng);
  copy_tail_params(base, tail);
  HybridNetwork hybrid(std::move(engine), std::move(tail));

  const data::DataSplit split = data::generate_synthetic_mnist(6, 1, 21);
  const auto direct_labels = hybrid.predict(split.train.images);
  const auto direct = hybrid.classify(split.train.images);

  runtime::ServerConfig server_cfg;
  server_cfg.max_batch = 4;
  server_cfg.max_delay_us = 200;
  runtime::Server server(hybrid.servable(), server_cfg);
  constexpr std::size_t kPixels = 28 * 28;
  std::vector<std::future<runtime::Prediction>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server.submit(split.train.images.data() + i * kPixels));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const runtime::Prediction p = futures[i].get();
    EXPECT_EQ(p.label, direct_labels[i]);
    EXPECT_EQ(p.margin, direct[i].margin);
  }
}

TEST(HybridNetwork, FastBackendsPredictIdenticallyToReference) {
  // End-to-end referee for the SIMD fast path: swapping sc-proposed for
  // sc-proposed-fast (and conventional likewise) must leave every
  // prediction AND every margin bit-identical — the whole pipeline after
  // the first layer consumes identical ternary features.
  nn::Rng rng(9);
  const auto cfg = tiny_lenet();
  nn::Network base = build_lenet(cfg, rng);
  const auto qw = nn::quantize_conv_weights(base_conv1_weights(base), 4);
  FirstLayerConfig flc;
  flc.bits = 4;
  const data::DataSplit split = data::generate_synthetic_mnist(8, 1, 33);

  auto& reg = runtime::BackendRegistry::instance();
  for (const char* pair : {"sc-proposed", "sc-conventional"}) {
    const std::string ref_name = pair;
    const std::string fast_name = ref_name + "-fast";
    auto make_net = [&](const std::string& backend) {
      nn::Rng tail_rng(10);
      nn::Network tail = build_tail(cfg, tail_rng);
      copy_tail_params(base, tail);
      return HybridNetwork(reg.create(backend, qw, flc), std::move(tail));
    };
    const auto ref = make_net(ref_name).classify(split.train.images);
    const auto fast = make_net(fast_name).classify(split.train.images);
    ASSERT_EQ(ref.size(), fast.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].label, fast[i].label) << ref_name << " image " << i;
      EXPECT_EQ(ref[i].margin, fast[i].margin) << ref_name << " image " << i;
    }
  }
}

TEST(Misclassification, PercentConversion) {
  EXPECT_DOUBLE_EQ(misclassification_pct(1.0), 0.0);
  EXPECT_DOUBLE_EQ(misclassification_pct(0.9), 10.0);
  EXPECT_DOUBLE_EQ(misclassification_pct(0.0), 100.0);
}

TEST(Experiment, RetrainingRecoversAccuracy) {
  // Scaled-down end-to-end run of the paper's central mechanism: freezing a
  // quantized sign-activated first layer hurts; retraining the tail
  // recovers most of the loss.
  ExperimentConfig cfg;
  cfg.train_n = 800;
  cfg.test_n = 150;
  cfg.lenet = tiny_lenet();
  cfg.base_epochs = 10;
  cfg.retrain_epochs = 3;
  cfg.seed = 5;
  PreparedExperiment prep = prepare_experiment(cfg);
  EXPECT_GT(prep.float_accuracy, 0.45);  // the tiny base model learned

  const auto point = evaluate_design_point(
      prep, cfg, FirstLayerDesign::kBinaryQuantized, 4);
  EXPECT_LE(point.misclassification_pct, point.before_retrain_pct + 1e-9);
  EXPECT_LT(point.misclassification_pct, 100.0 * (1.0 - 0.1));  // above chance
}

TEST(Experiment, FeatureAgreementOrdering) {
  ExperimentConfig cfg;
  cfg.train_n = 120;
  cfg.test_n = 60;
  cfg.lenet = tiny_lenet();
  cfg.base_epochs = 2;
  cfg.retrain_epochs = 1;
  cfg.seed = 6;
  PreparedExperiment prep = prepare_experiment(cfg);

  const auto proposed =
      evaluate_design_point(prep, cfg, FirstLayerDesign::kScProposed, 6);
  const auto conventional =
      evaluate_design_point(prep, cfg, FirstLayerDesign::kScConventional, 6);
  const auto binary = evaluate_design_point(
      prep, cfg, FirstLayerDesign::kBinaryQuantized, 6);
  // Binary reference agrees with itself by construction.
  EXPECT_DOUBLE_EQ(binary.feature_agreement_vs_binary, 1.0);
  // The proposed design's features track the exact computation more closely
  // than the conventional SC design's (Table 3's mechanism).
  EXPECT_GT(proposed.feature_agreement_vs_binary,
            conventional.feature_agreement_vs_binary);
}

TEST(Experiment, EnvOverridesApplied) {
  setenv("SCBNN_TRAIN_N", "123", 1);
  setenv("SCBNN_RETRAIN_EPOCHS", "5", 1);
  ExperimentConfig cfg;
  cfg.apply_env_overrides();
  EXPECT_EQ(cfg.train_n, 123u);
  EXPECT_EQ(cfg.retrain_epochs, 5);
  unsetenv("SCBNN_TRAIN_N");
  unsetenv("SCBNN_RETRAIN_EPOCHS");
}

TEST(Experiment, QuickProfileShrinksEverything) {
  setenv("SCBNN_QUICK", "1", 1);
  ExperimentConfig cfg;
  const auto before_conv2 = cfg.lenet.conv2_kernels;
  cfg.apply_env_overrides();
  EXPECT_LT(cfg.train_n, 4000u);
  EXPECT_LT(cfg.lenet.conv2_kernels, before_conv2);
  unsetenv("SCBNN_QUICK");
}

TEST(Experiment, EnvIgnoresGarbageValues) {
  setenv("SCBNN_TRAIN_N", "not-a-number", 1);
  ExperimentConfig cfg;
  const auto fallback = cfg.train_n;
  cfg.apply_env_overrides();
  EXPECT_EQ(cfg.train_n, fallback);
  unsetenv("SCBNN_TRAIN_N");
}

TEST(Experiment, CacheRoundTrip) {
  const std::string cache =
      (std::filesystem::temp_directory_path() / "scbnn_exp_cache.bin")
          .string();
  std::remove(cache.c_str());
  ExperimentConfig cfg;
  cfg.train_n = 100;
  cfg.test_n = 40;
  cfg.lenet = tiny_lenet();
  cfg.base_epochs = 1;
  cfg.cache_path = cache;
  cfg.seed = 7;
  PreparedExperiment first = prepare_experiment(cfg);
  EXPECT_FALSE(first.base_from_cache);
  PreparedExperiment second = prepare_experiment(cfg);
  EXPECT_TRUE(second.base_from_cache);
  EXPECT_DOUBLE_EQ(first.float_accuracy, second.float_accuracy);
  std::remove(cache.c_str());
}

}  // namespace
}  // namespace scbnn::hybrid
