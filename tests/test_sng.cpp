#include "sc/sng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "sc/lfsr.h"
#include "sc/lowdisc.h"
#include "sc/rng_source.h"

namespace scbnn::sc {
namespace {

TEST(Sng, RampGivesExactPrefixOnes) {
  RampSource ramp(4);
  for (std::uint32_t level = 0; level <= 16; ++level) {
    ramp.reset();
    const Bitstream s = generate_stream(ramp, level, 16);
    EXPECT_EQ(s.count_ones(), level);
    EXPECT_EQ(s, Bitstream::prefix_ones(16, level));
  }
}

TEST(Sng, VanDerCorputGivesExactCounts) {
  VanDerCorputSource vdc(6);
  for (std::uint32_t level = 0; level <= 64; level += 7) {
    vdc.reset();
    const Bitstream s = generate_stream(vdc, level, 64);
    EXPECT_EQ(s.count_ones(), level) << "level " << level;
  }
}

TEST(Sng, LfsrCountsAreApproximate) {
  // A k-bit LFSR never emits 0, so counts carry a small systematic bias —
  // this is a feature of the model (Table 1's motivation), not a bug.
  Lfsr lfsr(8, 1);
  const Bitstream s = generate_stream(lfsr, 128, 256);
  EXPECT_NEAR(static_cast<double>(s.count_ones()), 128.0, 8.0);
}

TEST(Sng, ZeroAndFullLevels) {
  VanDerCorputSource vdc(4);
  EXPECT_EQ(generate_stream(vdc, 0, 16).count_ones(), 0u);
  vdc.reset();
  EXPECT_EQ(generate_stream(vdc, 16, 16).count_ones(), 16u);
}

TEST(QuantizeUnipolar, GridMapping) {
  EXPECT_EQ(quantize_unipolar(0.0, 8), 0u);
  EXPECT_EQ(quantize_unipolar(1.0, 8), 256u);
  EXPECT_EQ(quantize_unipolar(0.5, 8), 128u);
  EXPECT_EQ(quantize_unipolar(0.5, 4), 8u);
}

TEST(QuantizeUnipolar, ClampsOutOfRange) {
  EXPECT_EQ(quantize_unipolar(-0.5, 8), 0u);
  EXPECT_EQ(quantize_unipolar(1.5, 8), 256u);
}

TEST(QuantizeUnipolar, RejectsBadWidth) {
  EXPECT_THROW((void)quantize_unipolar(0.5, 0), std::invalid_argument);
  EXPECT_THROW((void)quantize_unipolar(0.5, 32), std::invalid_argument);
}

TEST(AnalogToStochastic, SinglePeriodIsPrefixOnes) {
  const Bitstream s = analog_to_stochastic(0.5, 4, 16);
  EXPECT_EQ(s, Bitstream::prefix_ones(16, 8));
}

TEST(AnalogToStochastic, RepeatsAcrossPeriods) {
  const Bitstream s = analog_to_stochastic(0.25, 4, 32);
  EXPECT_EQ(s.count_ones(), 8u);  // 4 ones per 16-cycle period, twice
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(s.bit(i));
    EXPECT_TRUE(s.bit(16 + i));
  }
  EXPECT_FALSE(s.bit(4));
  EXPECT_FALSE(s.bit(20));
}

TEST(AnalogToStochastic, ValueRecovered) {
  for (double v : {0.0, 0.125, 0.3, 0.5, 0.77, 1.0}) {
    const Bitstream s = analog_to_stochastic(v, 8, 256);
    EXPECT_NEAR(s.unipolar(), v, 1.0 / 256.0 + 1e-12) << "value " << v;
  }
}

TEST(MersenneSource, RangeAndDeterminism) {
  MersenneSource a(8, 99), b(8, 99);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t va = a.next();
    EXPECT_LT(va, 256u);
    EXPECT_EQ(va, b.next());
  }
}

TEST(MersenneSource, ResetReproduces) {
  MersenneSource src(8, 5);
  const std::uint32_t first = src.next();
  (void)src.next();
  src.reset();
  EXPECT_EQ(src.next(), first);
}

class SngStatisticalTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SngStatisticalTest, EncodedValueWithinSamplingError) {
  const std::uint32_t level = GetParam();
  MersenneSource src(8, 1234);
  const std::size_t n = 4096;
  const Bitstream s = generate_stream(src, level, n);
  const double p = static_cast<double>(level) / 256.0;
  // 5-sigma Bernoulli bound.
  const double sigma = std::sqrt(p * (1 - p) / static_cast<double>(n));
  EXPECT_NEAR(s.unipolar(), p, 5.0 * sigma + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Levels, SngStatisticalTest,
                         ::testing::Values(0u, 16u, 64u, 128u, 200u, 256u));

}  // namespace
}  // namespace scbnn::sc
