// Bit-identity gates for the vectorized SC kernels (sc/simd.h): every
// implementation level runnable on this host must match the scalar
// reference circuits (sc/tff.h, plain word ops) bit for bit, across random
// streams, odd word counts, awkward column counts, and both TFF initial
// states. These tests are what lets the fast first-layer engines claim
// bit-identity with the reference engines by construction.
#include "sc/simd.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "sc/packed.h"
#include "sc/tff.h"

namespace scbnn::sc::simd {
namespace {

using u64 = std::uint64_t;

std::vector<u64> random_words(std::size_t n, std::mt19937_64& rng) {
  std::vector<u64> v(n);
  for (auto& w : v) w = rng();
  return v;
}

// Scenarios shared by all kernel tests: (nwords, ncols) shapes that cover
// single-column, non-multiple-of-4 columns (SIMD tails), the engine's real
// strip shapes (28 and 56 columns), and multi-word streams.
struct Shape {
  std::size_t nwords, ncols;
};
const Shape kShapes[] = {{1, 1},  {1, 3},  {2, 4},  {3, 5},
                         {1, 28}, {2, 31}, {4, 56}, {7, 2}};

class SimdLevels : public ::testing::TestWithParam<Level> {};

TEST_P(SimdLevels, AndWordsMatchesScalarAnd) {
  const Level level = GetParam();
  std::mt19937_64 rng(101);
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                        std::size_t{7}, std::size_t{64}, std::size_t{129}}) {
    const auto x = random_words(n, rng);
    const auto y = random_words(n, rng);
    std::vector<u64> z(n, 0xDEADBEEFu);
    and_words(x.data(), y.data(), z.data(), n, level);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(z[i], x[i] & y[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST_P(SimdLevels, TffAddColumnsMatchesStridedScalarReference) {
  const Level level = GetParam();
  std::mt19937_64 rng(202);
  for (const Shape& sh : kShapes) {
    for (bool s0 : {false, true}) {
      const auto x = random_words(sh.nwords * sh.ncols, rng);
      const auto y = random_words(sh.nwords * sh.ncols, rng);
      std::vector<u64> z(sh.nwords * sh.ncols, 0);
      tff_add_columns(x.data(), y.data(), z.data(), sh.nwords, sh.ncols, s0,
                      level);
      std::vector<u64> ref(sh.nwords * sh.ncols, 0);
      for (std::size_t c = 0; c < sh.ncols; ++c) {
        tff_add_words_strided(x.data() + c, y.data() + c, ref.data() + c,
                              sh.nwords, sh.ncols, s0);
      }
      EXPECT_EQ(z, ref) << "nwords=" << sh.nwords << " ncols=" << sh.ncols
                        << " s0=" << s0;
    }
  }
}

TEST_P(SimdLevels, TffAddColumnsInPlaceAliasing) {
  // The engine reduces its tree in place (node output overwrites an input
  // slot); z == x must behave exactly like the out-of-place call.
  const Level level = GetParam();
  std::mt19937_64 rng(203);
  const std::size_t nwords = 3, ncols = 28;
  const auto x = random_words(nwords * ncols, rng);
  const auto y = random_words(nwords * ncols, rng);
  std::vector<u64> ref(nwords * ncols, 0);
  tff_add_columns(x.data(), y.data(), ref.data(), nwords, ncols, true, level);
  std::vector<u64> z = x;
  tff_add_columns(z.data(), y.data(), z.data(), nwords, ncols, true, level);
  EXPECT_EQ(z, ref);
}

TEST_P(SimdLevels, MuxSelectColumnsMatchesScalarMux) {
  const Level level = GetParam();
  std::mt19937_64 rng(303);
  for (const Shape& sh : kShapes) {
    const auto sel = random_words(sh.nwords, rng);
    const auto x = random_words(sh.nwords * sh.ncols, rng);
    const auto y = random_words(sh.nwords * sh.ncols, rng);
    std::vector<u64> z(sh.nwords * sh.ncols, 0);
    mux_select_columns(sel.data(), x.data(), y.data(), z.data(), sh.nwords,
                       sh.ncols, level);
    for (std::size_t w = 0; w < sh.nwords; ++w) {
      for (std::size_t c = 0; c < sh.ncols; ++c) {
        const std::size_t i = w * sh.ncols + c;
        EXPECT_EQ(z[i], (sel[w] & y[i]) | (~sel[w] & x[i]))
            << "nwords=" << sh.nwords << " ncols=" << sh.ncols << " i=" << i;
      }
    }
  }
}

TEST_P(SimdLevels, TffAddFieldsMatchesPerStreamScalarReference) {
  // Field-packed kernel: every aligned width-bit field is an independent
  // stream. Reference: extract each field into the low bits of a lone word
  // (upper bits zero contribute x==y==0 -> z==0 under TFF semantics, so the
  // full-word scalar adder computes the isolated stream exactly).
  const Level level = GetParam();
  std::mt19937_64 rng(404);
  for (unsigned width : {2u, 4u, 8u, 16u, 32u, 64u}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{5},
                          std::size_t{8}, std::size_t{13}}) {
      for (bool s0 : {false, true}) {
        const auto x = random_words(n, rng);
        const auto y = random_words(n, rng);
        std::vector<u64> z(n, 0);
        tff_add_fields(x.data(), y.data(), z.data(), n, width, s0, level);
        const std::size_t fields = 64 / width;
        const u64 mask = low_mask(width);
        for (std::size_t w = 0; w < n; ++w) {
          for (std::size_t f = 0; f < fields; ++f) {
            const unsigned sh = static_cast<unsigned>(f) * width;
            const u64 xf = (x[w] >> sh) & mask;
            const u64 yf = (y[w] >> sh) & mask;
            u64 zf = 0;
            tff_add_words(&xf, &yf, &zf, 1, s0);
            EXPECT_EQ((z[w] >> sh) & mask, zf & mask)
                << "width=" << width << " n=" << n << " s0=" << s0
                << " word=" << w << " field=" << f;
          }
        }
      }
    }
  }
}

TEST_P(SimdLevels, TffAddFieldsBoundaryStreams) {
  // All-ones and all-zeros inputs exercise the cross-field parity
  // correction hardest: every field flips the cumulative parity.
  const Level level = GetParam();
  for (unsigned width : {2u, 4u, 8u, 16u, 32u, 64u}) {
    const std::size_t n = 5;
    for (bool s0 : {false, true}) {
      for (const u64 pattern :
           {~u64{0}, u64{0}, u64{0xAAAAAAAAAAAAAAAAull}}) {
        std::vector<u64> x(n, pattern), y(n, ~u64{0}), z(n, 0);
        tff_add_fields(x.data(), y.data(), z.data(), n, width, s0, level);
        const std::size_t fields = 64 / width;
        const u64 mask = low_mask(width);
        for (std::size_t w = 0; w < n; ++w) {
          for (std::size_t f = 0; f < fields; ++f) {
            const unsigned sh = static_cast<unsigned>(f) * width;
            const u64 xf = (x[w] >> sh) & mask;
            const u64 yf = (y[w] >> sh) & mask;
            u64 zf = 0;
            tff_add_words(&xf, &yf, &zf, 1, s0);
            EXPECT_EQ((z[w] >> sh) & mask, zf & mask)
                << "width=" << width << " pattern=" << pattern << " s0=" << s0
                << " word=" << w << " field=" << f;
          }
        }
      }
    }
  }
}

TEST_P(SimdLevels, PopcountColumnsMatchesScalarPopcount) {
  const Level level = GetParam();
  std::mt19937_64 rng(505);
  for (const Shape& sh : kShapes) {
    const auto x = random_words(sh.nwords * sh.ncols, rng);
    std::vector<long> counts(sh.ncols, -1);
    popcount_columns(x.data(), sh.nwords, sh.ncols, counts.data(), level);
    for (std::size_t c = 0; c < sh.ncols; ++c) {
      long ref = 0;
      for (std::size_t w = 0; w < sh.nwords; ++w) {
        ref += __builtin_popcountll(x[w * sh.ncols + c]);
      }
      EXPECT_EQ(counts[c], ref)
          << "nwords=" << sh.nwords << " ncols=" << sh.ncols << " c=" << c;
    }
  }
}

TEST_P(SimdLevels, FusedTffAddPopcountMatchesUnfused) {
  const Level level = GetParam();
  std::mt19937_64 rng(606);
  for (const Shape& sh : kShapes) {
    for (bool s0 : {false, true}) {
      const auto x = random_words(sh.nwords * sh.ncols, rng);
      const auto y = random_words(sh.nwords * sh.ncols, rng);
      std::vector<u64> z(sh.nwords * sh.ncols, 0);
      tff_add_columns(x.data(), y.data(), z.data(), sh.nwords, sh.ncols, s0,
                      level);
      std::vector<long> ref(sh.ncols, 0);
      popcount_columns(z.data(), sh.nwords, sh.ncols, ref.data(), level);
      std::vector<long> counts(sh.ncols, -1);
      tff_add_popcount_columns(x.data(), y.data(), sh.nwords, sh.ncols, s0,
                               counts.data(), level);
      EXPECT_EQ(counts, ref) << "nwords=" << sh.nwords
                             << " ncols=" << sh.ncols << " s0=" << s0;
    }
  }
}

TEST_P(SimdLevels, FusedMuxSelectPopcountMatchesUnfused) {
  const Level level = GetParam();
  std::mt19937_64 rng(707);
  for (const Shape& sh : kShapes) {
    const auto sel = random_words(sh.nwords, rng);
    const auto x = random_words(sh.nwords * sh.ncols, rng);
    const auto y = random_words(sh.nwords * sh.ncols, rng);
    std::vector<u64> z(sh.nwords * sh.ncols, 0);
    mux_select_columns(sel.data(), x.data(), y.data(), z.data(), sh.nwords,
                       sh.ncols, level);
    std::vector<long> ref(sh.ncols, 0);
    popcount_columns(z.data(), sh.nwords, sh.ncols, ref.data(), level);
    std::vector<long> counts(sh.ncols, -1);
    mux_select_popcount_columns(sel.data(), x.data(), y.data(), sh.nwords,
                                sh.ncols, counts.data(), level);
    EXPECT_EQ(counts, ref) << "nwords=" << sh.nwords << " ncols=" << sh.ncols;
  }
}

INSTANTIATE_TEST_SUITE_P(AvailableLevels, SimdLevels,
                         ::testing::ValuesIn(available_levels()),
                         [](const ::testing::TestParamInfo<Level>& info) {
                           return to_string(info.param);
                         });

TEST(SimdDispatch, ScalarAlwaysAvailableAndFirst) {
  const auto levels = available_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
}

TEST(SimdDispatch, FieldTopMaskClosedForm) {
  for (unsigned width : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    u64 ref = 0;
    for (unsigned f = 0; f < 64 / width; ++f) {
      ref |= u64{1} << (f * width + width - 1);
    }
    EXPECT_EQ(detail::field_top_mask(width), ref) << "width=" << width;
  }
}

}  // namespace
}  // namespace scbnn::sc::simd
