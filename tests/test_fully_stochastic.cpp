// Fully-stochastic MLP baseline: correctness of the reference path, error
// compounding across layers, the stream-length dependence that motivates
// the paper's hybrid design, and the APC-vs-MUX-tree accumulator ablation.
#include "hybrid/fully_stochastic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_mnist.h"
#include "nn/init.h"

namespace scbnn::hybrid {
namespace {

struct TinyMlp {
  nn::Tensor w1{std::vector<int>{8, 784}};
  nn::Tensor b1{std::vector<int>{8}};
  nn::Tensor w2{std::vector<int>{10, 8}};
  nn::Tensor b2{std::vector<int>{10}};
};

TinyMlp make_weights(std::uint64_t seed) {
  TinyMlp m;
  nn::Rng rng(seed);
  for (std::size_t i = 0; i < m.w1.size(); ++i) {
    m.w1[i] = rng.normal(0.0f, 0.05f);
  }
  for (std::size_t i = 0; i < m.w2.size(); ++i) {
    m.w2[i] = rng.normal(0.0f, 0.25f);
  }
  for (std::size_t i = 0; i < 8; ++i) m.b1[i] = rng.normal(0.0f, 0.05f);
  for (std::size_t i = 0; i < 10; ++i) m.b2[i] = rng.normal(0.0f, 0.05f);
  return m;
}

TEST(FullyStochastic, Validation) {
  TinyMlp m = make_weights(1);
  FullyStochasticConfig cfg;
  cfg.log2_n = 2;  // too short
  EXPECT_THROW(FullyStochasticMlp(m.w1, m.b1, m.w2, m.b2, cfg),
               std::invalid_argument);
  cfg.log2_n = 8;
  nn::Tensor bad_w1({8, 100});
  EXPECT_THROW(FullyStochasticMlp(bad_w1, m.b1, m.w2, m.b2, cfg),
               std::invalid_argument);
}

TEST(FullyStochastic, ReferenceMatchesManualMlp) {
  TinyMlp m = make_weights(2);
  FullyStochasticConfig cfg;
  cfg.log2_n = 8;
  FullyStochasticMlp net(m.w1, m.b1, m.w2, m.b2, cfg);
  const nn::Tensor img = data::render_digit(4, 3);
  const auto ref = net.reference(img.data());

  for (int h = 0; h < 8; ++h) {
    double acc = m.b1[static_cast<std::size_t>(h)];
    for (int i = 0; i < 784; ++i) {
      acc += static_cast<double>(img[static_cast<std::size_t>(i)]) *
             m.w1[static_cast<std::size_t>(h) * 784 + i];
    }
    EXPECT_NEAR(ref.hidden[static_cast<std::size_t>(h)], std::tanh(acc),
                1e-6);
  }
  EXPECT_GE(ref.predicted, 0);
  EXPECT_LT(ref.predicted, 10);
}

TEST(FullyStochastic, ApcTracksReferenceAtLongStreams) {
  TinyMlp m = make_weights(3);
  FullyStochasticConfig cfg;
  cfg.log2_n = 12;  // N = 4096
  cfg.accumulator = ScAccumulator::kApc;
  FullyStochasticMlp net(m.w1, m.b1, m.w2, m.b2, cfg);
  const nn::Tensor img = data::render_digit(7, 5);
  const auto sc = net.infer(img.data());
  const auto ref = net.reference(img.data());
  EXPECT_LT(FullyStochasticMlp::hidden_rms_error(sc, ref), 0.35);
}

TEST(FullyStochastic, ErrorGrowsAsStreamsShorten) {
  // The Section II.B claim: fully stochastic networks need long streams.
  TinyMlp m = make_weights(4);
  const nn::Tensor img = data::render_digit(2, 9);
  std::vector<double> errs;
  for (unsigned log2_n : {12u, 8u, 5u}) {
    FullyStochasticConfig cfg;
    cfg.log2_n = log2_n;
    FullyStochasticMlp net(m.w1, m.b1, m.w2, m.b2, cfg);
    const auto sc = net.infer(img.data());
    const auto ref = net.reference(img.data());
    errs.push_back(FullyStochasticMlp::hidden_rms_error(sc, ref));
  }
  EXPECT_LT(errs[0], errs[2]);           // N=4096 clearly beats N=32
  EXPECT_LT(errs[0], 0.2);
  EXPECT_GT(errs[2], 0.15);              // 32-cycle streams: degraded
}

TEST(FullyStochastic, ApcBeatsMuxTreeAccumulation) {
  // Why prior fully-stochastic work [6][16] abandoned scaled MUX trees:
  // the 1/fan-in scale factor plus FSM re-amplification destroys wide
  // layers (Section II.A's "severe loss of precision").
  TinyMlp m = make_weights(5);
  const nn::Tensor img = data::render_digit(8, 2);
  FullyStochasticConfig apc_cfg;
  apc_cfg.log2_n = 10;
  apc_cfg.accumulator = ScAccumulator::kApc;
  FullyStochasticConfig mux_cfg = apc_cfg;
  mux_cfg.accumulator = ScAccumulator::kMuxTree;

  FullyStochasticMlp apc(m.w1, m.b1, m.w2, m.b2, apc_cfg);
  FullyStochasticMlp mux(m.w1, m.b1, m.w2, m.b2, mux_cfg);
  const auto ref = apc.reference(img.data());
  const double apc_err =
      FullyStochasticMlp::hidden_rms_error(apc.infer(img.data()), ref);
  const double mux_err =
      FullyStochasticMlp::hidden_rms_error(mux.infer(img.data()), ref);
  EXPECT_LT(apc_err, mux_err);
  EXPECT_GT(mux_err, 0.3);  // the MUX tree is unusable at this width
}

TEST(FullyStochastic, LogitErrorReflectsCompounding) {
  // Layer 2 consumes layer 1's noisy outputs: logit error does not vanish
  // even though layer 2 is small.
  TinyMlp m = make_weights(5);
  const nn::Tensor img = data::render_digit(8, 2);
  FullyStochasticConfig cfg;
  cfg.log2_n = 7;
  FullyStochasticMlp net(m.w1, m.b1, m.w2, m.b2, cfg);
  const auto sc = net.infer(img.data());
  const auto ref = net.reference(img.data());
  EXPECT_GT(FullyStochasticMlp::logit_rms_error(sc, ref), 0.05);
  EXPECT_GT(FullyStochasticMlp::hidden_rms_error(sc, ref), 0.05);
}

TEST(FullyStochastic, DeterministicForFixedSeed) {
  TinyMlp m = make_weights(6);
  const nn::Tensor img = data::render_digit(1, 4);
  FullyStochasticConfig cfg;
  cfg.log2_n = 6;
  FullyStochasticMlp net(m.w1, m.b1, m.w2, m.b2, cfg);
  const auto a = net.infer(img.data());
  const auto b = net.infer(img.data());
  EXPECT_EQ(a.predicted, b.predicted);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(a.logits[i], b.logits[i]);
}

TEST(FullyStochastic, WeightsAreClampedToBipolarRange) {
  TinyMlp m = make_weights(7);
  m.w2[0] = 5.0f;  // out of range
  FullyStochasticConfig cfg;
  cfg.log2_n = 8;
  FullyStochasticMlp net(m.w1, m.b1, m.w2, m.b2, cfg);
  const nn::Tensor img = data::render_digit(0, 0);
  const auto ref = net.reference(img.data());
  for (double l : ref.logits) EXPECT_TRUE(std::isfinite(l));
}

}  // namespace
}  // namespace scbnn::hybrid
