// Near-sensor system pipeline (Fig. 3 of the paper, middle row), deployed
// the way the paper's system would ship: as a frozen trained artifact.
//
// Startup loads a ModelBundle (training only happens when no matching
// bundle exists — run examples/train_and_export or let this example export
// one on first run), instantiates two servables from it with ZERO training,
// and registers both in a runtime::ModelRouter over one shared executor:
//
//   "fixed"    — a single-rung pipeline at kBits, the paper's static design
//   "adaptive" — the 3/kBits-bit ladder, escalating uncertain frames only
//
// A camera stream is simulated frame by frame: each frame is submitted as a
// single request carrying a model id, the router hands it to that model's
// dynamic batch former, and the per-model Servers coalesce whatever is
// waiting into dense micro-batches. The adaptive model is hot-registered
// AFTER the fixed model has started taking traffic — a new bundle joins a
// live fleet without stopping anything. Per-frame latency and energy come
// from the calibrated 65nm model, with the all-binary design for
// comparison.
#include <algorithm>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hw/binary_design.h"
#include "hw/report.h"
#include "hw/stochastic_design.h"
#include "hybrid/bundle.h"
#include "hybrid/experiment.h"
#include "runtime/adaptive_pipeline.h"
#include "runtime/model_router.h"
#include "runtime/thread_pool.h"
#include "sensor/frame_source.h"
#include "sensor/sensor_session.h"
#include "sensor/stream_supervisor.h"

namespace {

using namespace scbnn;

constexpr std::size_t kPixels =
    static_cast<std::size_t>(hybrid::kImageSize) * hybrid::kImageSize;

/// Submit every frame of the stream as its own request to one model of the
/// router and wait for all predictions — the sensor-side view of
/// multi-model serving.
std::vector<runtime::Prediction> serve_stream(runtime::ModelRouter& router,
                                              const std::string& model,
                                              const data::Dataset& frames) {
  const int n = static_cast<int>(frames.size());
  std::vector<std::future<runtime::Prediction>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    futures.push_back(router.submit(
        model,
        frames.images.data() + static_cast<std::size_t>(i) * kPixels));
  }
  std::vector<runtime::Prediction> predictions;
  predictions.reserve(futures.size());
  for (auto& f : futures) predictions.push_back(f.get());
  return predictions;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr unsigned kBits = 6;
  constexpr int kFrames = 16;
  constexpr double kMargin = 0.5;

  hybrid::ExperimentConfig cfg;
  cfg.train_n = 1500;
  cfg.test_n = 400;
  cfg.base_epochs = 5;
  cfg.retrain_epochs = 2;
  cfg.cache_path = "scbnn_example_model_cache.bin";
  cfg.apply_env_overrides();

  const bench::Flags flags(argc, argv);
  const std::string bundle_path =
      flags.get_string("bundle", "SCBNN_BUNDLE", "scbnn_example.bundle");

  // Obtain the trained artifact: load when a matching bundle is on disk
  // (zero training, millisecond startup), train-and-export otherwise.
  const std::vector<unsigned> rung_bits = {3u, kBits};
  auto resolved = data::resolve_dataset(cfg.train_n, cfg.test_n, cfg.seed);
  bool trained_fresh = false;
  hybrid::ModelBundle bundle = hybrid::load_or_train_bundle(
      cfg, rung_bits, hybrid::FirstLayerDesign::kScProposed, bundle_path,
      resolved, kMargin, &trained_fresh);
  std::printf("%s %u/%u-bit ladder from %s\n\n",
              trained_fresh ? "trained and exported" : "loaded (no training)",
              rung_bits[0], kBits, bundle_path.c_str());

  // Both deployments share ONE executor: N models, one set of workers.
  runtime::RuntimeConfig rc = cfg.runtime_config();
  rc.executor = runtime::make_shared_executor(rc.threads);
  auto fixed = std::make_shared<runtime::AdaptivePipeline>(
      hybrid::instantiate_bundle_ladder(bundle, bundle.rungs.size() - 1),
      0.0, rc);
  auto adaptive = std::make_shared<runtime::AdaptivePipeline>(
      hybrid::instantiate_bundle_ladder(bundle), kMargin, rc);

  runtime::ServerConfig server_cfg;
  server_cfg.max_batch = 8;
  server_cfg.max_delay_us = 2000;
  runtime::ModelRouter router(server_cfg);
  router.register_model("fixed", fixed);

  // "Sensor" stream = the first frames of the test split, one request per
  // frame, each tagged with the model that should serve it.
  const data::Dataset frames = data::head(resolved.split.test, kFrames);
  const std::vector<runtime::Prediction> predictions =
      serve_stream(router, "fixed", frames);
  {
    const runtime::ServerStats stats = router.stats("fixed");
    std::printf("model 'fixed': served %ld single-frame requests on %u "
                "shared workers in %ld micro-batches (mean batch %.1f)\n\n",
                stats.completed, fixed->threads(), stats.batches,
                stats.mean_batch_size());
  }

  hw::StochasticConvDesign sc(kBits);
  hw::BinaryConvDesign bin(kBits);
  const double frame_us = sc.frame_time_s() * 1e6;
  const double frame_nj = sc.energy_per_frame_j() * 1e9;

  std::printf("frame | truth | predicted | wait+compute (ms) | batch | "
              "energy (this work vs binary)\n");
  int correct = 0;
  double total_nj = 0.0;
  for (int i = 0; i < kFrames; ++i) {
    const runtime::Prediction& p = predictions[static_cast<std::size_t>(i)];
    const bool ok = p.label == frames.labels[static_cast<std::size_t>(i)];
    correct += ok ? 1 : 0;
    total_nj += frame_nj;
    std::printf("%5d | %5d | %9d | %7.2f + %6.2f  | %5d | %6.1f nJ vs "
                "%6.1f nJ %s\n",
                i, frames.labels[static_cast<std::size_t>(i)], p.label,
                p.queue_wait_ms, p.compute_ms, p.batch_size, frame_nj,
                bin.energy_per_frame_j() * 1e9, ok ? "" : "  <- miss");
  }

  std::printf("\nstream accuracy: %d/%d\n", correct, kFrames);
  std::printf("stochastic first layer: %.2f us and %.1f nJ per frame "
              "(32 kernel passes x %zu cycles @ 500 MHz)\n",
              frame_us, frame_nj, std::size_t{1} << kBits);
  std::printf("total first-layer energy for the stream: %.2f uJ (binary "
              "design: %.2f uJ, %.1fx more)\n",
              total_nj * 1e-3, bin.energy_per_frame_j() * 1e9 * kFrames * 1e-3,
              bin.energy_per_frame_j() / sc.energy_per_frame_j());

  // ---- Hot registration: the adaptive deployment joins the live fleet ----
  router.register_model("adaptive", adaptive);
  std::printf("\nhot-registered model 'adaptive' (router now serves:");
  for (const std::string& id : router.model_ids()) {
    std::printf(" %s", id.c_str());
  }
  std::printf(") — no restart, same executor\n");

  const std::vector<runtime::Prediction> outcomes =
      serve_stream(router, "adaptive", frames);
  const double adaptive_energy_j = router.stats("adaptive").energy_j;
  int adaptive_correct = 0;
  std::vector<int> exits(adaptive->rung_count(), 0);
  for (int i = 0; i < kFrames; ++i) {
    const runtime::Prediction& p = outcomes[static_cast<std::size_t>(i)];
    if (p.label == frames.labels[static_cast<std::size_t>(i)]) {
      ++adaptive_correct;
    }
    ++exits[static_cast<std::size_t>(p.rung)];
  }

  std::printf("\nAdaptive precision (margin %.2f): %d/%d correct\n", kMargin,
              adaptive_correct, kFrames);
  std::printf("exit histogram:\n");
  int entering = kFrames;
  for (std::size_t r = 0; r < adaptive->rung_count(); ++r) {
    std::printf("  rung %zu (%u-bit): %3d frames entered, %3d exited\n", r,
                adaptive->rung(r).bits, entering, exits[r]);
    entering -= exits[r];
  }
  // Energy of a fixed kBits design over the stream, from the same per-rung
  // aggregation the pipeline uses internally.
  const int kernels = adaptive->rung(0).engine->kernels();
  const double fixed_j = hw::aggregate_rung_energy_j(
      {{adaptive->rung(0).engine->name(), kBits, kernels, kFrames}});
  std::printf("adaptive first-layer energy: %.1f nJ vs %.1f nJ fixed "
              "%u-bit — %.1f%% saved at %+d correct\n",
              adaptive_energy_j * 1e9, fixed_j * 1e9, kBits,
              100.0 * (1.0 - adaptive_energy_j / fixed_j),
              adaptive_correct - correct);

  router.shutdown();

  // ---- Sensor stream: a noisy, bursty camera overloads the ladder ----
  //
  // The full near-sensor loop: frames arrive in bursts through a noisy
  // sensor, a SensorSession feeds them to the router one request at a
  // time, and a StreamSupervisor sheds *precision* (not frames) when the
  // queue backs up — then walks the ladder back up once the burst passes.
  {
    constexpr long kStreamFrames = 96;

    // Calibrate the ladder's dense-batch peak (the router is down, so
    // direct classify is safe) and offer 2.5x that: sustained overload.
    const data::Dataset pool = data::head(resolved.split.test, 64);
    nn::Tensor calib({static_cast<int>(pool.size()), 1, hybrid::kImageSize,
                      hybrid::kImageSize});
    std::copy(pool.images.data(), pool.images.data() + calib.size(),
              calib.data());
    (void)adaptive->classify(calib);  // warm-up
    const auto t0 = runtime::ServeClock::now();
    (void)adaptive->classify(calib);
    const double peak_rps =
        static_cast<double>(pool.size()) * 1e3 /
        std::max(1e-6, bench::ms_since(t0));

    sensor::ArrivalConfig arrivals;
    arrivals.kind = sensor::ArrivalKind::kBursty;
    arrivals.rate_hz = std::max(1.0, 2.5 * peak_rps);
    arrivals.burst_len = 24;
    sensor::NoisySensorSource::Noise noise;
    noise.gaussian_stddev = 0.03;
    sensor::NoisySensorSource source(
        std::make_unique<sensor::DatasetReplaySource>(pool, kStreamFrames,
                                                      arrivals, 41),
        noise, 42);

    runtime::ServerConfig stream_cfg;
    stream_cfg.max_batch = 8;
    stream_cfg.max_delay_us = 500;
    stream_cfg.queue_capacity = 24;
    runtime::ModelRouter stream_router(stream_cfg);
    stream_router.register_model("adaptive", adaptive);

    sensor::SessionConfig session_cfg;
    session_cfg.policy = sensor::BackpressurePolicy::kDegrade;
    sensor::SensorSession session(source, stream_router, "adaptive",
                                  session_cfg);
    sensor::SupervisorConfig sup_cfg;
    sup_cfg.high_inflight = 18;
    sup_cfg.low_inflight = 6;
    sup_cfg.tick_us = 1000;
    sensor::StreamSupervisor supervisor(adaptive, sup_cfg);
    supervisor.watch(&session);
    supervisor.start();

    session.start();
    const sensor::StreamStats stream = session.finish();
    const std::vector<sensor::SupervisorEvent> events = supervisor.events();
    supervisor.stop();

    std::printf("\nSensor stream (%s, ~%.0f frames/s offered vs ~%.0f "
                "sustainable, degrade policy):\n",
                source.name().c_str(), arrivals.rate_hz, peak_rps);
    std::printf("  delivered %ld/%ld frames (0 dropped), %ld served at "
                "reduced precision (cap floor rung %d of %d)\n",
                stream.delivered, stream.produced, stream.degraded,
                stream.min_rung_cap_seen, supervisor.full_rung());
    std::printf("  e2e latency p50/p99: %.2f/%.2f ms; accuracy %.0f%%; "
                "first-layer energy %.1f nJ/frame\n",
                stream.e2e_ms.p50, stream.e2e_ms.p99,
                100.0 * stream.accuracy(), stream.energy_nj_per_frame());
    std::printf("  supervisor moved the rung cap %zu times and restored "
                "the full ladder afterwards\n",
                events.size());
  }

  std::printf("\nNote: sensor conversion energy is excluded, as in the "
              "paper (Section IV.A) — prior work\nputs ramp-compare "
              "conversion at ~100 pJ/frame, negligible next to "
              "computation.\n");
  return 0;
}
