// Near-sensor system pipeline (Fig. 3 of the paper, middle row).
//
// Simulates a camera producing frames one at a time — the way work actually
// arrives near a sensor. Each frame is submitted as a single request to
// runtime::Server, whose batch former coalesces whatever is waiting into a
// dense micro-batch before handing it to the backend (enqueue -> batch
// former -> Servable -> future resolution). The fixed-precision stream runs
// against a single-rung pipeline at kBits; per-frame latency and energy
// come from the calibrated 65nm model, with the all-binary design for
// comparison.
//
// The second half serves the same stream, again request by request, through
// the adaptive-precision ladder: a cheap 3-bit rung classifies every frame
// first and only the uncertain ones escalate to the 6-bit rung, so the
// stream's average first-layer energy drops below the fixed-precision
// design at matching accuracy. Every prediction also reports its queue
// wait, compute time, and the micro-batch it rode in.
#include <cstdio>
#include <future>
#include <vector>

#include "hw/binary_design.h"
#include "hw/report.h"
#include "hw/stochastic_design.h"
#include "hybrid/experiment.h"
#include "nn/loss.h"
#include "nn/trainer.h"
#include "runtime/adaptive_pipeline.h"
#include "runtime/server.h"

namespace {

using namespace scbnn;

constexpr std::size_t kPixels =
    static_cast<std::size_t>(hybrid::kImageSize) * hybrid::kImageSize;

/// Submit every frame of the stream as its own request and wait for all
/// predictions — the sensor-side view of the serving core.
std::vector<runtime::Prediction> serve_stream(runtime::Server& server,
                                              const data::Dataset& frames) {
  const int n = static_cast<int>(frames.size());
  std::vector<std::future<runtime::Prediction>> futures;
  futures.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    futures.push_back(server.submit(frames.images.data() +
                                    static_cast<std::size_t>(i) * kPixels));
  }
  std::vector<runtime::Prediction> predictions;
  predictions.reserve(futures.size());
  for (auto& f : futures) predictions.push_back(f.get());
  return predictions;
}

}  // namespace

int main() {
  constexpr unsigned kBits = 6;
  constexpr int kFrames = 16;
  constexpr double kMargin = 0.5;

  hybrid::ExperimentConfig cfg;
  cfg.train_n = 1500;
  cfg.test_n = 400;
  cfg.base_epochs = 5;
  cfg.retrain_epochs = 2;
  cfg.cache_path = "scbnn_example_model_cache.bin";
  cfg.apply_env_overrides();

  std::printf("Preparing the hybrid network (%u-bit stochastic first "
              "layer)...\n\n", kBits);
  hybrid::PreparedExperiment prep = hybrid::prepare_experiment(cfg);

  // Train the precision ladder once: a cheap 3-bit rung and the deployed
  // kBits rung, each with a tail retrained on its frozen features.
  const std::vector<unsigned> rung_bits = {3u, kBits};
  std::vector<hybrid::TrainedRung> ladder =
      hybrid::train_precision_ladder(prep, cfg, rung_bits);

  // "Sensor" stream = the first frames of the test split. A single-rung
  // pipeline at kBits is exactly the fixed design; the Server in front of
  // it coalesces the one-frame requests into micro-batches (dispatching
  // when 8 wait or the oldest has waited 2 ms).
  const data::Dataset frames = data::head(prep.data.test, kFrames);
  runtime::AdaptivePipeline fixed_pipeline(
      hybrid::instantiate_ladder({&ladder.back(), 1}, cfg), 0.0,
      cfg.runtime_config());
  runtime::ServerConfig server_cfg;
  server_cfg.max_batch = 8;
  server_cfg.max_delay_us = 2000;

  std::vector<runtime::Prediction> predictions;
  {
    runtime::Server server(fixed_pipeline, server_cfg);
    predictions = serve_stream(server, frames);
    server.shutdown();
    const runtime::ServerStats stats = server.stats();
    std::printf("served %ld single-frame requests on %u worker threads in "
                "%ld micro-batches (mean batch %.1f)\n\n",
                stats.completed, fixed_pipeline.threads(), stats.batches,
                stats.mean_batch_size());
  }

  hw::StochasticConvDesign sc(kBits);
  hw::BinaryConvDesign bin(kBits);
  const double frame_us = sc.frame_time_s() * 1e6;
  const double frame_nj = sc.energy_per_frame_j() * 1e9;

  std::printf("frame | truth | predicted | wait+compute (ms) | batch | "
              "energy (this work vs binary)\n");
  int correct = 0;
  double total_nj = 0.0;
  for (int i = 0; i < kFrames; ++i) {
    const runtime::Prediction& p = predictions[static_cast<std::size_t>(i)];
    const bool ok = p.label == frames.labels[static_cast<std::size_t>(i)];
    correct += ok ? 1 : 0;
    total_nj += frame_nj;
    std::printf("%5d | %5d | %9d | %7.2f + %6.2f  | %5d | %6.1f nJ vs "
                "%6.1f nJ %s\n",
                i, frames.labels[static_cast<std::size_t>(i)], p.label,
                p.queue_wait_ms, p.compute_ms, p.batch_size, frame_nj,
                bin.energy_per_frame_j() * 1e9, ok ? "" : "  <- miss");
  }

  std::printf("\nstream accuracy: %d/%d\n", correct, kFrames);
  std::printf("stochastic first layer: %.2f us and %.1f nJ per frame "
              "(32 kernel passes x %zu cycles @ 500 MHz)\n",
              frame_us, frame_nj, std::size_t{1} << kBits);
  std::printf("total first-layer energy for the stream: %.2f uJ (binary "
              "design: %.2f uJ, %.1fx more)\n",
              total_nj * 1e-3, bin.energy_per_frame_j() * 1e9 * kFrames * 1e-3,
              bin.energy_per_frame_j() / sc.energy_per_frame_j());

  // ---- Adaptive precision: same stream of requests, 3-bit rung first ----
  runtime::AdaptivePipeline adaptive(hybrid::instantiate_ladder(ladder, cfg),
                                     kMargin, cfg.runtime_config());
  double adaptive_energy_j = 0.0;
  std::vector<runtime::Prediction> outcomes;
  {
    runtime::Server server(adaptive, server_cfg);
    outcomes = serve_stream(server, frames);
    server.shutdown();
    adaptive_energy_j = server.stats().energy_j;
  }
  int adaptive_correct = 0;
  std::vector<int> exits(adaptive.rung_count(), 0);
  for (int i = 0; i < kFrames; ++i) {
    const runtime::Prediction& p = outcomes[static_cast<std::size_t>(i)];
    if (p.label == frames.labels[static_cast<std::size_t>(i)]) {
      ++adaptive_correct;
    }
    ++exits[static_cast<std::size_t>(p.rung)];
  }

  std::printf("\nAdaptive precision (margin %.2f): %d/%d correct\n", kMargin,
              adaptive_correct, kFrames);
  std::printf("exit histogram:\n");
  int entering = kFrames;
  for (std::size_t r = 0; r < adaptive.rung_count(); ++r) {
    std::printf("  rung %zu (%u-bit): %3d frames entered, %3d exited\n", r,
                adaptive.rung(r).bits, entering, exits[r]);
    entering -= exits[r];
  }
  // Energy of a fixed kBits design over the stream, from the same per-rung
  // aggregation the pipeline uses internally.
  const int kernels = adaptive.rung(0).engine->kernels();
  const double fixed_j = hw::aggregate_rung_energy_j(
      {{adaptive.rung(0).engine->name(), kBits, kernels, kFrames}});
  std::printf("adaptive first-layer energy: %.1f nJ vs %.1f nJ fixed "
              "%u-bit — %.1f%% saved at %+d correct\n",
              adaptive_energy_j * 1e9, fixed_j * 1e9, kBits,
              100.0 * (1.0 - adaptive_energy_j / fixed_j),
              adaptive_correct - correct);

  std::printf("\nNote: sensor conversion energy is excluded, as in the "
              "paper (Section IV.A) — prior work\nputs ramp-compare "
              "conversion at ~100 pJ/frame, negligible next to "
              "computation.\n");
  return 0;
}
