// Near-sensor system pipeline (Fig. 3 of the paper, middle row).
//
// Simulates a camera producing frames: each frame passes through the
// ramp-compare analog-to-stochastic converter into the 784-unit stochastic
// convolution layer, then the binary tail classifies the digit. Per-frame
// latency and energy come from the calibrated 65nm model; the same stream
// is also run through the all-binary design for comparison.
//
// The second half serves the same stream through the adaptive-precision
// pipeline: a cheap 3-bit rung classifies every frame first and only the
// uncertain ones escalate to the 6-bit rung, so the stream's average
// first-layer energy drops below the fixed-precision design at matching
// accuracy.
#include <cstdio>
#include <vector>

#include "hw/binary_design.h"
#include "hw/report.h"
#include "hw/stochastic_design.h"
#include "hybrid/experiment.h"
#include "nn/loss.h"
#include "nn/trainer.h"
#include "runtime/adaptive_pipeline.h"

int main() {
  using namespace scbnn;
  constexpr unsigned kBits = 6;
  constexpr int kFrames = 16;
  constexpr double kMargin = 0.5;

  hybrid::ExperimentConfig cfg;
  cfg.train_n = 1500;
  cfg.test_n = 400;
  cfg.base_epochs = 5;
  cfg.retrain_epochs = 2;
  cfg.cache_path = "scbnn_example_model_cache.bin";
  cfg.apply_env_overrides();

  std::printf("Preparing the hybrid network (%u-bit stochastic first "
              "layer)...\n\n", kBits);
  hybrid::PreparedExperiment prep = hybrid::prepare_experiment(cfg);

  // Train the precision ladder once: a cheap 3-bit rung and the deployed
  // kBits rung, each with a tail retrained on its frozen features.
  const std::vector<unsigned> rung_bits = {3u, kBits};
  std::vector<hybrid::TrainedRung> ladder =
      hybrid::train_precision_ladder(prep, cfg, rung_bits);

  // "Sensor" stream = the first frames of the test split, served as one
  // batch through the threaded inference runtime at fixed kBits precision
  // (a single-rung pipeline is exactly the fixed design).
  const data::Dataset frames = data::head(prep.data.test, kFrames);
  runtime::AdaptivePipeline fixed_pipeline(
      hybrid::instantiate_ladder({&ladder.back(), 1}, cfg), 0.0,
      cfg.runtime_config());

  const auto predictions = fixed_pipeline.predict(frames.images);
  const runtime::PipelineStats& fixed_stats = fixed_pipeline.last_stats();
  std::printf("served %d frames on %u worker threads: %.2f ms, %.0f "
              "images/sec (simulation)\n\n",
              fixed_stats.images, fixed_stats.threads, fixed_stats.latency_ms,
              fixed_stats.images_per_sec);

  hw::StochasticConvDesign sc(kBits);
  hw::BinaryConvDesign bin(kBits);
  const double frame_us = sc.frame_time_s() * 1e6;
  const double frame_nj = sc.energy_per_frame_j() * 1e9;

  std::printf("frame | truth | predicted | first-layer latency | energy "
              "(this work vs binary)\n");
  int correct = 0;
  double total_nj = 0.0;
  for (int i = 0; i < kFrames; ++i) {
    const bool ok = predictions[static_cast<std::size_t>(i)] ==
                    frames.labels[static_cast<std::size_t>(i)];
    correct += ok ? 1 : 0;
    total_nj += frame_nj;
    std::printf("%5d | %5d | %9d | %16.2f us | %6.1f nJ vs %6.1f nJ %s\n", i,
                frames.labels[static_cast<std::size_t>(i)],
                predictions[static_cast<std::size_t>(i)], frame_us, frame_nj,
                bin.energy_per_frame_j() * 1e9, ok ? "" : "  <- miss");
  }

  std::printf("\nstream accuracy: %d/%d\n", correct, kFrames);
  std::printf("stochastic first layer: %.2f us and %.1f nJ per frame "
              "(32 kernel passes x %zu cycles @ 500 MHz)\n",
              frame_us, frame_nj, std::size_t{1} << kBits);
  std::printf("total first-layer energy for the stream: %.2f uJ (binary "
              "design: %.2f uJ, %.1fx more)\n",
              total_nj * 1e-3, bin.energy_per_frame_j() * 1e9 * kFrames * 1e-3,
              bin.energy_per_frame_j() / sc.energy_per_frame_j());

  // ---- Adaptive precision: same stream, 3-bit rung first ----------------
  runtime::AdaptivePipeline adaptive(hybrid::instantiate_ladder(ladder, cfg),
                                     kMargin, cfg.runtime_config());
  const auto outcomes = adaptive.classify(frames.images);
  const runtime::PipelineStats& stats = adaptive.last_stats();
  int adaptive_correct = 0;
  for (int i = 0; i < kFrames; ++i) {
    if (outcomes[static_cast<std::size_t>(i)].predicted ==
        frames.labels[static_cast<std::size_t>(i)]) {
      ++adaptive_correct;
    }
  }

  std::printf("\nAdaptive precision (margin %.2f): %d/%d correct\n", kMargin,
              adaptive_correct, kFrames);
  std::printf("exit histogram:\n");
  for (std::size_t r = 0; r < stats.rungs.size(); ++r) {
    const runtime::RungStats& rs = stats.rungs[r];
    std::printf("  rung %zu (%u-bit): %3d frames entered, %3d exited "
                "(%.2f ms, %.0f SC cycles)\n",
                r, rs.bits, rs.images_in, rs.images_exited, rs.latency_ms,
                rs.sc_cycles);
  }
  // Energy of a fixed kBits design over the stream, from the same per-rung
  // aggregation the pipeline uses internally.
  const int kernels = adaptive.rung(0).engine->kernels();
  const double fixed_j = hw::aggregate_rung_energy_j(
      {{adaptive.rung(0).engine->name(), kBits, kernels, kFrames}});
  std::printf("adaptive first-layer energy: %.1f nJ vs %.1f nJ fixed "
              "%u-bit — %.1f%% saved at %+d correct\n",
              stats.energy_j * 1e9, fixed_j * 1e9, kBits,
              100.0 * (1.0 - stats.energy_j / fixed_j),
              adaptive_correct - correct);

  std::printf("\nNote: sensor conversion energy is excluded, as in the "
              "paper (Section IV.A) — prior work\nputs ramp-compare "
              "conversion at ~100 pJ/frame, negligible next to "
              "computation.\n");
  return 0;
}
