// Near-sensor system pipeline (Fig. 3 of the paper, middle row).
//
// Simulates a camera producing frames: each frame passes through the
// ramp-compare analog-to-stochastic converter into the 784-unit stochastic
// convolution layer, then the binary tail classifies the digit. Per-frame
// latency and energy come from the calibrated 65nm model; the same stream
// is also run through the all-binary design for comparison.
#include <cstdio>

#include "hw/binary_design.h"
#include "hw/stochastic_design.h"
#include "hybrid/experiment.h"
#include "nn/loss.h"
#include "nn/trainer.h"

int main() {
  using namespace scbnn;
  constexpr unsigned kBits = 6;
  constexpr int kFrames = 16;

  hybrid::ExperimentConfig cfg;
  cfg.train_n = 1500;
  cfg.test_n = 400;
  cfg.base_epochs = 5;
  cfg.retrain_epochs = 2;
  cfg.cache_path = "scbnn_example_model_cache.bin";
  cfg.apply_env_overrides();

  std::printf("Preparing the hybrid network (%u-bit stochastic first "
              "layer)...\n\n", kBits);
  hybrid::PreparedExperiment prep = hybrid::prepare_experiment(cfg);

  // Assemble the deployed pipeline: proposed SC engine + retrained tail.
  const auto qw =
      nn::quantize_conv_weights(hybrid::base_conv1_weights(prep.base), kBits);
  hybrid::FirstLayerConfig flc;
  flc.bits = kBits;
  flc.soft_threshold = cfg.sc_soft_threshold;
  auto engine = hybrid::make_first_layer_engine(
      hybrid::FirstLayerDesign::kScProposed, qw, flc);
  nn::Rng rng(cfg.seed + 1);
  nn::Network tail = hybrid::build_tail(cfg.lenet, rng);
  hybrid::copy_tail_params(prep.base, tail);
  hybrid::HybridNetwork net(std::move(engine), std::move(tail));

  nn::Tensor train_feat = net.features(prep.data.train.images);
  nn::TrainConfig tc;
  tc.epochs = cfg.retrain_epochs;
  tc.batch_size = cfg.batch_size;
  (void)net.retrain(train_feat, prep.data.train.labels, tc, cfg.retrain_lr);

  // "Sensor" stream = the first frames of the test split, served as one
  // batch through the threaded inference runtime.
  const data::Dataset frames = data::head(prep.data.test, kFrames);
  const auto predictions = net.predict(frames.images);
  const runtime::BatchStats& stats = net.last_stats();
  std::printf("served %d frames on %u worker threads: %.2f ms, %.0f "
              "images/sec (simulation)\n\n",
              stats.images, stats.threads, stats.latency_ms,
              stats.images_per_sec);

  hw::StochasticConvDesign sc(kBits);
  hw::BinaryConvDesign bin(kBits);
  const double frame_us = sc.frame_time_s() * 1e6;
  const double frame_nj = sc.energy_per_frame_j() * 1e9;

  std::printf("frame | truth | predicted | first-layer latency | energy "
              "(this work vs binary)\n");
  int correct = 0;
  double total_nj = 0.0;
  for (int i = 0; i < kFrames; ++i) {
    const bool ok = predictions[static_cast<std::size_t>(i)] ==
                    frames.labels[static_cast<std::size_t>(i)];
    correct += ok ? 1 : 0;
    total_nj += frame_nj;
    std::printf("%5d | %5d | %9d | %16.2f us | %6.1f nJ vs %6.1f nJ %s\n", i,
                frames.labels[static_cast<std::size_t>(i)],
                predictions[static_cast<std::size_t>(i)], frame_us, frame_nj,
                bin.energy_per_frame_j() * 1e9, ok ? "" : "  <- miss");
  }

  std::printf("\nstream accuracy: %d/%d\n", correct, kFrames);
  std::printf("stochastic first layer: %.2f us and %.1f nJ per frame "
              "(32 kernel passes x %zu cycles @ 500 MHz)\n",
              frame_us, frame_nj, std::size_t{1} << kBits);
  std::printf("total first-layer energy for the stream: %.2f uJ (binary "
              "design: %.2f uJ, %.1fx more)\n",
              total_nj * 1e-3, bin.energy_per_frame_j() * 1e9 * kFrames * 1e-3,
              bin.energy_per_frame_j() / sc.energy_per_frame_j());
  std::printf("\nNote: sensor conversion energy is excluded, as in the "
              "paper (Section IV.A) — prior work\nputs ramp-compare "
              "conversion at ~100 pJ/frame, negligible next to "
              "computation.\n");
  return 0;
}
