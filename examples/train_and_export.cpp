// Train once, export a deployable ModelBundle — the training half of the
// train/export/serve split.
//
// Runs the paper's full training flow (float base model, quantized
// first-layer ladder, per-rung tail retraining), packages the result as a
// versioned binary bundle, and verifies the artifact by reloading it in
// the same process and checking bit-identical predictions on the test
// split. Serving processes (benches, near_sensor_pipeline, a ModelRouter
// fleet) then cold-start from the bundle in milliseconds with zero
// training.
//
// Knobs (flag -> env -> default): --out/SCBNN_BUNDLE (bundle path),
// --rungs/SCBNN_BUNDLE_RUNGS (comma bits, strictly increasing),
// --backend/SCBNN_BUNDLE_BACKEND (registry name), --margin/
// SCBNN_BUNDLE_MARGIN, plus the usual SCBNN_* experiment scale variables.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hybrid/bundle.h"
#include "hybrid/experiment.h"
#include "runtime/servable.h"

using namespace scbnn;
using bench::file_bytes;

int main(int argc, char** argv) {
  hybrid::ExperimentConfig cfg;
  cfg.train_n = 3000;
  cfg.test_n = 800;
  cfg.cache_path = "scbnn_base_model_cache.bin";
  cfg.apply_env_overrides();

  const bench::Flags flags(argc, argv);
  const std::string out_path =
      flags.get_string("out", "SCBNN_BUNDLE", "scbnn_ladder.bundle");
  const std::vector<double> rung_values = flags.get_double_list(
      "rungs", "SCBNN_BUNDLE_RUNGS", "3,5,8", 1.0, 16.0);
  const std::string backend = flags.get_string(
      "backend", "SCBNN_BUNDLE_BACKEND", "sc-proposed");
  const double margin =
      flags.get_double("margin", "SCBNN_BUNDLE_MARGIN", 0.5, 0.0, 1.0);

  std::vector<unsigned> rung_bits;
  rung_bits.reserve(rung_values.size());
  for (double v : rung_values) {
    if (v != static_cast<unsigned>(v)) {
      std::fprintf(stderr, "error: --rungs values must be integers, got %g\n",
                   v);
      return 1;
    }
    if (!rung_bits.empty() && static_cast<unsigned>(v) <= rung_bits.back()) {
      std::fprintf(stderr,
                   "error: --rungs must be strictly increasing bits\n");
      return 1;
    }
    rung_bits.push_back(static_cast<unsigned>(v));
  }

  hybrid::FirstLayerDesign design;
  try {
    design = hybrid::design_from_backend(backend);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("Training %s ladder (", backend.c_str());
  for (std::size_t i = 0; i < rung_bits.size(); ++i) {
    std::printf("%s%u-bit", i > 0 ? "/" : "", rung_bits[i]);
  }
  std::printf(") — train=%zu test=%zu, export to %s\n\n", cfg.train_n,
              cfg.test_n, out_path.c_str());

  const auto train_start = runtime::ServeClock::now();
  hybrid::PreparedExperiment prep = hybrid::prepare_experiment(cfg);
  std::vector<hybrid::TrainedRung> ladder =
      hybrid::train_precision_ladder(prep, cfg, rung_bits, design);
  const double train_s = bench::ms_since(train_start) / 1e3;

  hybrid::ModelBundle bundle =
      hybrid::make_bundle(prep, cfg, std::move(ladder), margin);
  hybrid::save_bundle(bundle, out_path);
  const long bytes = file_bytes(out_path);

  // Prove the artifact: reload in this process and require bit-identical
  // predictions against the just-trained model on the whole test split.
  const auto load_start = runtime::ServeClock::now();
  hybrid::ModelBundle reloaded = hybrid::load_bundle(out_path);
  const double load_ms = bench::ms_since(load_start);

  auto trained_servable = hybrid::instantiate_servable(bundle);
  auto loaded_servable = hybrid::instantiate_servable(reloaded);
  const auto trained_pred = trained_servable->classify(prep.data.test.images);
  const auto loaded_pred = loaded_servable->classify(prep.data.test.images);
  int mismatches = 0;
  int correct = 0;
  for (std::size_t i = 0; i < trained_pred.size(); ++i) {
    if (trained_pred[i].label != loaded_pred[i].label ||
        trained_pred[i].margin != loaded_pred[i].margin ||
        trained_pred[i].rung != loaded_pred[i].rung) {
      ++mismatches;
    }
    if (loaded_pred[i].label ==
        prep.data.test.labels[i]) {
      ++correct;
    }
  }

  std::printf("bundle: %s (%ld bytes, format v%u)\n", out_path.c_str(), bytes,
              hybrid::kBundleVersion);
  std::printf("  backend           %s\n", bundle.backend.c_str());
  std::printf("  rungs             ");
  for (std::size_t i = 0; i < bundle.rungs.size(); ++i) {
    std::printf("%s%u-bit", i > 0 ? " / " : "", bundle.rungs[i].bits);
  }
  std::printf("\n  confidence margin %.2f\n", bundle.confidence_margin);
  std::printf("  dataset           train=%llu test=%llu seed=%llu %s "
              "(hash %016llx)\n",
              static_cast<unsigned long long>(bundle.fingerprint.train_n),
              static_cast<unsigned long long>(bundle.fingerprint.test_n),
              static_cast<unsigned long long>(bundle.fingerprint.seed),
              bundle.fingerprint.real_mnist ? "mnist" : "synthetic",
              static_cast<unsigned long long>(
                  bundle.fingerprint.content_hash));

  std::printf("\ntrain %.1f s -> reload %.1f ms (%.0fx cold-start "
              "reduction)\n",
              train_s, load_ms,
              load_ms > 0.0 ? train_s * 1e3 / load_ms : 0.0);
  std::printf("reloaded vs trained on %zu test frames: %s (%d mismatches), "
              "accuracy %d/%zu\n",
              trained_pred.size(),
              mismatches == 0 ? "bit-identical" : "MISMATCH", mismatches,
              correct, trained_pred.size());
  return mismatches == 0 ? 0 : 1;
}
