// Quickstart: the stochastic-computing substrate in five minutes.
//
// Shows the core objects a user of this library touches: bit-streams,
// number sources, SNGs, the AND multiplier, the conventional MUX adder, and
// the paper's TFF adder — ending with a 25-input dot product like the one
// the hybrid network's first layer runs near the sensor.
#include <cstdio>
#include <vector>

#include "sc/adder_tree.h"
#include "sc/dot_product.h"
#include "sc/gates.h"
#include "sc/lowdisc.h"
#include "sc/sng.h"
#include "sc/tff.h"

int main() {
  using namespace scbnn::sc;

  std::printf("== 1. Stochastic numbers are bit-streams ==\n");
  const Bitstream x = Bitstream::from_string("0110 0011");
  std::printf("X = %s encodes pX = %.3f (unipolar), %.3f (bipolar)\n\n",
              x.to_string().c_str(), x.unipolar(), x.bipolar());

  std::printf("== 2. Encoding values: SNGs and the ramp converter ==\n");
  VanDerCorputSource vdc(4);
  const Bitstream w = generate_stream(vdc, 12, 16);  // 12/16 = 0.75
  const Bitstream s = analog_to_stochastic(0.5, 4, 16);
  std::printf("low-discrepancy SNG, level 12/16: %s (p=%.3f)\n",
              w.to_string().c_str(), w.unipolar());
  std::printf("ramp-compare converter,   0.5:    %s (p=%.3f, "
              "auto-correlated — that's fine here)\n\n",
              s.to_string().c_str(), s.unipolar());

  std::printf("== 3. Multiplication is an AND gate ==\n");
  const Bitstream prod = and_multiply(s, w);
  std::printf("0.5 * 0.75 -> %s (p=%.3f, exact: 0.375)\n\n",
              prod.to_string().c_str(), prod.unipolar());

  std::printf("== 4. Addition: the paper's TFF adder vs the MUX adder ==\n");
  const Bitstream a = analog_to_stochastic(0.75, 4, 16);
  const Bitstream b = generate_stream(vdc, 4, 16);  // 0.25
  const Bitstream sum = tff_add(a, b, false);
  std::printf("TFF adder: 0.5*(0.75 + 0.25) -> %s (p=%.4f, exact 0.5, "
              "always within half an ULP)\n",
              sum.to_string().c_str(), sum.unipolar());
  Bitstream select(16);
  for (std::size_t i = 1; i < 16; i += 2) select.set_bit(i, true);
  const Bitstream mux_sum = mux_add(a, b, select);
  std::printf("MUX adder with the same inputs:  %s (p=%.4f — discards half "
              "the bits)\n\n",
              mux_sum.to_string().c_str(), mux_sum.unipolar());

  std::printf("== 5. A 25-tap stochastic dot product (one conv window) ==\n");
  StochasticDotProduct dp(8, 25, DotProductStyle::kProposed);
  std::vector<int> weights(25);
  std::vector<std::uint32_t> pixels(25);
  for (int i = 0; i < 25; ++i) {
    weights[static_cast<std::size_t>(i)] = (i % 2 == 0) ? 180 : -90;
    pixels[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(10 * i);
  }
  dp.set_weights(weights);
  const auto r = dp.run(pixels, /*soft_threshold=*/0.3);
  double exact = 0.0;
  for (int i = 0; i < 25; ++i) {
    exact += (pixels[static_cast<std::size_t>(i)] / 256.0) *
             (weights[static_cast<std::size_t>(i)] / 256.0);
  }
  std::printf("pos_count=%llu neg_count=%llu -> value=%.3f (exact %.3f), "
              "sign activation: %+d\n",
              static_cast<unsigned long long>(r.pos_count),
              static_cast<unsigned long long>(r.neg_count), r.value, exact,
              r.sign);
  std::printf("\nNext: examples/digit_recognition for the full hybrid "
              "network, examples/near_sensor_pipeline\nfor the system view "
              "with energy estimates.\n");
  return 0;
}
