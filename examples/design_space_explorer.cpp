// Design-space exploration: which first-layer precision should a
// near-sensor deployment run? Joins the 65nm cost models with the paper's
// accuracy results and walks the energy/accuracy Pareto frontier.
#include <cstdio>

#include "hw/design_space.h"

int main() {
  using namespace scbnn::hw;

  std::printf("Design-space exploration (accuracy: paper Table 3; "
              "power/energy/area: calibrated 65nm model)\n\n");
  const auto points = sweep_design_space_paper();

  std::printf("%5s %12s %12s %12s %12s %12s %10s\n", "bits", "SC mW",
              "SC nJ/frame", "bin nJ/frame", "ratio", "miscl %", "penalty");
  for (const auto& p : points) {
    std::printf("%5u %12.2f %12.2f %12.2f %11.1fx %12.2f %+9.2f%%\n", p.bits,
                p.sc_power_mw, p.sc_energy_nj, p.bin_energy_nj,
                p.energy_ratio, p.miscl_this_work_pct,
                p.accuracy_penalty_pct());
  }

  std::printf("\nPareto frontier (energy vs misclassification):\n");
  for (const auto& p : pareto_frontier(points)) {
    std::printf("  %u-bit: %.2f nJ/frame at %.2f%% misclassification\n",
                p.bits, p.sc_energy_nj, p.miscl_this_work_pct);
  }

  std::printf("\nOperating-point selection:\n");
  for (double budget : {1.0, 1.1, 2.5, 50.0}) {
    const auto pick = select_operating_point(points, budget);
    if (pick) {
      std::printf("  accuracy budget <= %5.2f%% -> run %u-bit: %.2f nJ/frame "
                  "(%.1fx vs binary)\n",
                  budget, pick->bits, pick->sc_energy_nj,
                  pick->energy_ratio);
    } else {
      std::printf("  accuracy budget <= %5.2f%% -> no stochastic design "
                  "qualifies; use the binary design\n", budget);
    }
  }

  std::printf("\nThe paper's recommendation falls out directly: at a ~1%% "
              "misclassification budget the\n4-bit hybrid wins with ~10x "
              "the energy efficiency of the all-binary design.\n");
  return 0;
}
