// Export synthesizable Verilog for the paper's circuits.
//
// The behavioral simulators in src/sc are bit-for-bit equivalent to these
// netlists (proven in tests/test_netlist.cpp), so the RTL written here is
// the hardware the reproduction's numbers describe: the Fig. 2a halver,
// the Fig. 2b TFF adder, and the 32-leaf scaled adder tree used by each of
// the 784 dot-product units.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "hw/netlist.h"

namespace {

void write_module(const scbnn::hw::Netlist& nl, const std::string& name,
                  const std::filesystem::path& dir) {
  const std::filesystem::path path = dir / (name + ".v");
  std::ofstream f(path);
  f << nl.to_verilog(name);
  std::printf("  %-18s -> %s  (%zu gates, %.1f GE, %zu TFFs)\n", name.c_str(),
              path.string().c_str(), nl.gate_count(), nl.gate_equivalents(),
              nl.count(scbnn::hw::GateOp::kTff));
}

}  // namespace

int main() {
  using namespace scbnn::hw;
  const std::filesystem::path dir = "rtl";
  std::filesystem::create_directories(dir);
  std::printf("Writing synthesizable Verilog to %s/:\n",
              dir.string().c_str());
  write_module(build_tff_halver_netlist(), "tff_halver", dir);
  write_module(build_tff_adder_netlist(), "tff_adder", dir);
  write_module(build_mux_adder_netlist(), "mux_adder", dir);
  write_module(build_tff_tree_netlist(8), "tff_tree8", dir);
  write_module(build_tff_tree_netlist(32), "tff_tree32", dir);
  // The complete Fig. 3 dot-product unit: 32 taps (25 used + 7 padded),
  // 9-bit output counters as in the 8-bit-precision design point.
  write_module(build_dot_unit_netlist(32, 9), "sc_dot_unit32", dir);

  std::printf("\nPreview of tff_adder.v:\n\n%s",
              build_tff_adder_netlist().to_verilog("tff_adder").c_str());
  std::printf("\nEvery module here is cycle-accurate-equivalent to the "
              "behavioral model (see\ntests/test_netlist.cpp); tff_tree32 "
              "is the reduction network inside each of the 784\n"
              "stochastic dot-product units of Fig. 3.\n");
  return 0;
}
