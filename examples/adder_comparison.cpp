// Compare all the stochastic adders in this library on the same inputs:
// the conventional MUX adder (three select-stream configurations), the
// approximate OR adder, and the proposed TFF adder — then sweep precision
// to show where each design becomes usable.
#include <cmath>
#include <cstdio>

#include "sc/gates.h"
#include "sc/lfsr.h"
#include "sc/mse.h"
#include "sc/sng.h"
#include "sc/tff.h"

int main() {
  using namespace scbnn::sc;

  std::printf("One addition, every adder: 0.5 * (0.70 + 0.20), N = 32\n\n");
  const Bitstream x = analog_to_stochastic(0.70, 5, 32);
  Lfsr ylf(5, 9);
  const Bitstream y = generate_stream(ylf, static_cast<std::uint32_t>(0.20 * 32), 32);
  const double exact = 0.5 * (x.unipolar() + y.unipolar());

  Lfsr sel_lfsr(5, 3);
  const Bitstream sel = generate_stream(sel_lfsr, 16, 32);
  Bitstream alt(32);
  for (std::size_t i = 1; i < 32; i += 2) alt.set_bit(i, true);

  struct Row {
    const char* name;
    Bitstream z;
  };
  const Row rows[] = {
      {"MUX + LFSR select", mux_add(x, y, sel)},
      {"MUX + TFF select", mux_add(x, y, alt)},
      {"OR (approximate)", or_add(x, y)},
      {"TFF adder (this work)", tff_add(x, y, false)},
  };
  std::printf("%-24s %-34s %8s %8s\n", "adder", "output stream", "value",
              "error");
  for (const auto& r : rows) {
    const double err = r.name[0] == 'O'
                           ? r.z.unipolar() - (x.unipolar() + y.unipolar() -
                                               x.unipolar() * y.unipolar())
                           : r.z.unipolar() - exact;
    std::printf("%-24s %-34s %8.4f %+8.4f\n", r.name,
                r.z.to_string().c_str(), r.z.unipolar(), err);
  }
  std::printf("(the OR adder's 'error' is against its own target "
              "px + py - px*py — it approximates\naddition only near "
              "zero)\n\n");

  std::printf("Exhaustive MSE sweep across precision (old = MUX LFSR+TFF, "
              "new = TFF adder):\n");
  std::printf("%6s %14s %14s %26s\n", "bits", "old adder", "new adder",
              "bits gained by new adder");
  for (unsigned bits = 3; bits <= 9; ++bits) {
    const double old_mse = adder_mse(AddScheme::kMuxLfsrDataTffSelect, bits).mse;
    const double new_mse = adder_mse(AddScheme::kTffAdder, bits).mse;
    // RMS error halves per extra bit, so MSE ratio 4x ~= 1 bit.
    const double bits_gained = 0.5 * std::log2(old_mse / new_mse);
    std::printf("%6u %14.3e %14.3e %26.1f\n", bits, old_mse, new_mse,
                bits_gained);
  }
  std::printf("\nReading: at equal stream length the TFF adder is worth "
              "several extra bits of precision,\nwhich is exactly why the "
              "hybrid design can shorten streams (and run time) so "
              "aggressively.\n");
  return 0;
}
