// Digit recognition with the hybrid stochastic-binary network.
//
// End-to-end walk through the paper's pipeline at a single operating point
// (4-bit first layer, the paper's 9.8x energy sweet spot):
//   1. train a float LeNet-5 variant,
//   2. freeze + quantize its first conv layer with sign activation,
//   3. run that layer bit-exactly in the stochastic domain,
//   4. retrain the binary tail,
//   5. compare against the all-binary design and show what retraining
//      recovered.
#include <cstdio>

#include "hw/binary_design.h"
#include "hw/stochastic_design.h"
#include "hybrid/experiment.h"
#include "runtime/backend_registry.h"

int main() {
  using namespace scbnn;
  constexpr unsigned kBits = 4;

  hybrid::ExperimentConfig cfg;
  cfg.train_n = 2000;
  cfg.test_n = 600;
  cfg.base_epochs = 5;
  cfg.retrain_epochs = 3;
  cfg.cache_path = "scbnn_example_model_cache.bin";
  cfg.apply_env_overrides();

  std::printf("Training the float base model (LeNet-5 variant, %zu synthetic "
              "MNIST digits)...\n", cfg.train_n);
  hybrid::PreparedExperiment prep = hybrid::prepare_experiment(cfg);
  std::printf("  float model misclassification: %.2f%%%s\n\n",
              100.0 * (1.0 - prep.float_accuracy),
              prep.base_from_cache ? " (from cache)" : "");

  std::printf("Registered first-layer backends:");
  for (const auto& name : runtime::BackendRegistry::instance().names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  std::printf("Evaluating %u-bit first-layer designs (frozen layer + tail "
              "retraining):\n\n", kBits);
  std::printf("%-12s %22s %22s %20s\n", "design", "before retrain (%)",
              "after retrain (%)", "feature agreement");
  for (auto design : {hybrid::FirstLayerDesign::kBinaryQuantized,
                      hybrid::FirstLayerDesign::kScConventional,
                      hybrid::FirstLayerDesign::kScProposed}) {
    const auto r = hybrid::evaluate_design_point(prep, cfg, design, kBits);
    std::printf("%-12s %22.2f %22.2f %19.1f%%\n",
                to_string(design).c_str(), r.before_retrain_pct,
                r.misclassification_pct,
                100.0 * r.feature_agreement_vs_binary);
  }

  hw::StochasticConvDesign sc(kBits);
  hw::BinaryConvDesign bin(kBits);
  std::printf("\nFirst-layer hardware at %u bits (65nm gate-level model):\n",
              kBits);
  std::printf("  this work: %.1f mW, %.1f nJ/frame, %.2f mm^2\n",
              sc.power_w() * 1e3, sc.energy_per_frame_j() * 1e9,
              sc.area_mm2());
  std::printf("  binary:    %.1f mW (throughput-normalized), %.1f nJ/frame, "
              "%.2f mm^2\n",
              bin.normalized_power_w(sc) * 1e3,
              bin.energy_per_frame_j() * 1e9, bin.area_mm2());
  std::printf("  energy advantage: %.1fx per frame\n",
              bin.energy_per_frame_j() / sc.energy_per_frame_j());
  return 0;
}
